//! A minimal work-stealing job pool over `std::thread::scope`.
//!
//! Every parallel sweep in the workspace has the same shape: a fixed list
//! of independent, pure jobs whose results must come back **in index
//! order** and **bit-identical** to a sequential loop. This module is that
//! shape, extracted once: worker threads pull job indices from a shared
//! atomic counter (natural work stealing — a worker that finishes early
//! simply claims the next index), each job runs entirely on one thread (so
//! no float accumulation is ever reordered), and results are collected by
//! index. Used by [`crate::sim::simulate_designs`], the
//! [`crate::grid`] (design × model) engine, and `bench`'s parallel trace
//! loader. (The workspace builds without a crates registry, so this stands
//! in for an external thread pool such as rayon.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The default worker count: one per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs `jobs` invocations of `f` (one per index `0..jobs`) across at most
/// `workers` threads, returning results in index order.
///
/// With one worker (or one job) this degenerates to a plain sequential
/// loop — no threads are spawned. Results are identical either way as long
/// as `f` is a pure function of its index.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                // A send only fails if the receiver is gone, which would
                // mean the collection loop below panicked already.
                let _ = tx.send((i, f(i)));
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().map(|r| r.expect("every job index ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_indexed(20, workers, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        run_indexed(100, 7, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
