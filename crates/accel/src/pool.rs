//! A minimal work-stealing job pool over `std::thread::scope`.
//!
//! Every parallel sweep in the workspace has the same shape: a fixed list
//! of independent, pure jobs whose results must come back **in index
//! order** and **bit-identical** to a sequential loop. This module is that
//! shape, extracted once: worker threads pull job indices from a shared
//! atomic counter (natural work stealing — a worker that finishes early
//! simply claims the next index), each job runs entirely on one thread (so
//! no float accumulation is ever reordered), and results are collected by
//! index. Used by [`crate::sim::simulate_designs`], the
//! [`crate::grid`] (design × model) engine, and `bench`'s parallel trace
//! loader. (The workspace builds without a crates registry, so this stands
//! in for an external thread pool such as rayon.)

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use ditto_core::telemetry;

/// The default worker count: one per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs `jobs` invocations of `f` (one per index `0..jobs`) across at most
/// `workers` threads, returning results in index order.
///
/// With one worker (or one job) this degenerates to a plain sequential
/// loop — no threads are spawned. Results are identical either way as long
/// as `f` is a pure function of its index.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    if workers <= 1 || jobs <= 1 {
        if jobs > 0 {
            telemetry::counter("pool.run_indexed.jobs", jobs as u64);
        }
        return (0..jobs).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                let mut claimed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    // A send only fails if the receiver is gone, which
                    // would mean the collection loop below panicked
                    // already.
                    let _ = tx.send((i, f(i)));
                    claimed += 1;
                }
                // The per-worker claim count is the work-stealing balance
                // signal: a skewed distribution means some jobs dominated
                // the sweep. One gate check + two sends per worker per
                // sweep, nothing on the per-job path.
                if telemetry::on() {
                    telemetry::counter(&format!("pool.worker{w}.jobs"), claimed);
                    telemetry::series("pool.jobs_per_worker", claimed);
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    telemetry::counter("pool.run_indexed.jobs", jobs as u64);
    slots.into_iter().map(|r| r.expect("every job index ran")).collect()
}

// --------------------------------------------------------------------------
// Priority pool
// --------------------------------------------------------------------------

/// One queued [`PriorityPool`] job: a boxed closure ranked by priority,
/// FIFO within a priority level.
struct QueuedJob {
    priority: i64,
    /// Submission sequence number; lower = submitted earlier.
    seq: u64,
    run: Box<dyn FnOnce() + Send>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; within a
        // priority, the *lower* sequence number (earlier submission) wins.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct PoolState {
    queue: BinaryHeap<QueuedJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    seq: AtomicUsize,
}

/// A persistent worker pool that executes submitted jobs in **priority
/// order**: higher [`submit`](PriorityPool::submit) priorities run first,
/// and jobs of equal priority run in submission (FIFO) order. This is the
/// long-lived complement to the batch-shaped [`run_indexed`]: callers that
/// receive work over time (the `serve` cell scheduler) feed it here and
/// synchronize on their own completion state.
///
/// Ordering is a dequeue guarantee, not a completion guarantee — with more
/// than one worker, a low-priority job already running is not preempted by
/// a later high-priority submission.
pub struct PriorityPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PriorityPool {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: BinaryHeap::new(), shutdown: false }),
            available: Condvar::new(),
            seq: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().expect("pool state");
                        loop {
                            if let Some(job) = state.queue.pop() {
                                break job;
                            }
                            if state.shutdown {
                                return;
                            }
                            state = shared.available.wait(state).expect("pool state");
                        }
                    };
                    (job.run)();
                })
            })
            .collect();
        PriorityPool { shared, workers }
    }

    /// Enqueues `job` at `priority` (higher runs sooner; FIFO within a
    /// level). The job runs on one worker thread exactly once.
    pub fn submit(&self, priority: i64, job: impl FnOnce() + Send + 'static) {
        self.submit_counted(priority, job);
    }

    /// Like [`submit`](Self::submit), but returns the queue depth
    /// *including the just-enqueued job*, observed atomically under the
    /// queue lock — the "queue depth at enqueue" instrumentation point the
    /// serve observability layer records (a post-hoc
    /// [`queue_depth`](Self::queue_depth) read would race the workers).
    pub fn submit_counted(&self, priority: i64, job: impl FnOnce() + Send + 'static) -> usize {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) as u64;
        let mut state = self.shared.state.lock().expect("pool state");
        state.queue.push(QueuedJob { priority, seq, run: Box::new(job) });
        let depth = state.queue.len();
        drop(state);
        self.shared.available.notify_one();
        telemetry::series("pool.queue_depth", depth as u64);
        depth
    }

    /// Jobs currently queued (excluding any already claimed by a worker).
    /// Advisory: the value may be stale by the time the caller uses it.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool state").queue.len()
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for PriorityPool {
    /// Drains the remaining queue, then joins every worker.
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state").shutdown = true;
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_indexed(20, workers, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        run_indexed(100, 7, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn priority_pool_dequeues_by_priority_then_fifo() {
        // One worker, gated by an initial job that blocks until every other
        // job is queued, so the dequeue order is fully determined.
        let pool = PriorityPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (log_tx, log_rx) = mpsc::channel::<&'static str>();
        pool.submit(i64::MAX, move || {
            gate_rx.recv().expect("gate opens");
        });
        for (priority, tag) in [(0, "a0"), (5, "b5"), (0, "c0"), (-3, "d-3"), (5, "e5"), (9, "f9")]
        {
            let log = log_tx.clone();
            pool.submit(priority, move || log.send(tag).expect("log alive"));
        }
        gate_tx.send(()).expect("worker waiting on gate");
        drop(log_tx);
        let order: Vec<_> = log_rx.iter().collect();
        assert_eq!(order, vec!["f9", "b5", "e5", "a0", "c0", "d-3"]);
    }

    #[test]
    fn submit_counted_reports_depth_at_enqueue() {
        // One worker blocked on a gate: depths grow deterministically as
        // jobs stack up behind it, and drain to zero once it opens.
        let pool = PriorityPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let d0 = pool.submit_counted(0, move || {
            gate_rx.recv().expect("gate opens");
        });
        assert_eq!(d0, 1, "first submit sees only itself");
        // Give the worker a moment to claim the gate job off the queue.
        for _ in 0..200 {
            if pool.queue_depth() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.queue_depth(), 0, "claimed job leaves the queue");
        assert_eq!(pool.submit_counted(0, || {}), 1);
        assert_eq!(pool.submit_counted(0, || {}), 2);
        assert_eq!(pool.submit_counted(5, || {}), 3);
        gate_tx.send(()).expect("worker waiting on gate");
    }

    #[test]
    fn priority_pool_runs_every_job_across_workers() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<_> = (0..64).map(|_| Arc::new(AtomicU32::new(0))).collect();
        {
            let pool = PriorityPool::new(5);
            for (i, c) in counts.iter().enumerate() {
                let c = Arc::clone(c);
                pool.submit((i % 3) as i64, move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop drains the queue and joins the workers.
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
