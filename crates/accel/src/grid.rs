//! The (design × model) sweep engine.
//!
//! The paper's whole evaluation is one grid: every hardware design point
//! crossed with every traced diffusion model (Fig. 13–19, Table I, the
//! ablations). [`run`] executes such a grid as a flat list of independent
//! cell jobs over the work-stealing [`crate::pool`] — a shared atomic job
//! index over `std::thread::scope`, so a worker that finishes a cheap cell
//! immediately claims the next one regardless of which row it belongs to —
//! and returns a [`SweepReport`] of structured [`CellResult`]s that is
//! **bit-identical** to the sequential nested loop (each cell is a pure
//! function of `(design, trace)` and accumulates on exactly one thread).
//!
//! The report is a value, not a printout: experiment drivers (`bench`)
//! render their figure tables from it, the `serve` front-end serializes it
//! as JSON, and both the [`ditto_core::binio`] and [`ditto_core::jsonio`]
//! codecs round-trip it exactly.
//!
//! Cells are additionally **kernel-backend-invariant**: the simulator
//! consumes trace statistics, and the kernel stack that produces traces is
//! bit-identical across every `tensor::backend` selection, so a report —
//! and any memo entry the serve scheduler builds from one — never depends
//! on `DITTO_KERNEL_BACKEND` (asserted end-to-end in the umbrella
//! `backend_invariance` test and the grid-engine test below).
//!
//! # Example
//!
//! ```
//! use accel::design::Design;
//! use accel::grid::{self, SweepSpec};
//! use accel::sim::synth;
//!
//! let traces = [synth::trace(3, 5, 100_000, 64, true)];
//! let spec = SweepSpec::new(
//!     vec![Design::itc(), Design::ditto()],
//!     traces.iter().collect(),
//! );
//! let report = grid::run(&spec)?;
//! assert_eq!(report.designs, vec!["ITC", "Ditto"]);
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.cell(1, 0).speedup_vs_gpu > 0.0);
//! # Ok::<(), accel::grid::SweepError>(())
//! ```

use ditto_core::binio::{BinError, FromBin, Reader, ToBin};
use ditto_core::jsonio::{FromJson, JsonError, ToJson, Value};
use ditto_core::telemetry;
use ditto_core::trace::WorkloadTrace;

use crate::design::Design;
use crate::energy::EnergyBreakdown;
use crate::gpu::simulate_gpu;
use crate::pool;
use crate::sim::{simulate, DefoReport, RunResult};

/// Why a sweep could not run. The single non-panicking error path shared
/// by [`crate::sim::simulate_designs`] and [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The design list is empty — there is nothing to simulate.
    EmptyDesigns,
    /// The trace list is empty — there is nothing to simulate on.
    EmptyTraces,
    /// A trace has no layers or no steps; every derived metric would be a
    /// 0/0 `NaN`.
    EmptyTrace {
        /// `WorkloadTrace::model` of the offending trace.
        model: String,
    },
    /// A trace's per-step stats row does not match its layer list, so the
    /// simulator would silently drop layers.
    MismatchedTrace {
        /// `WorkloadTrace::model` of the offending trace.
        model: String,
        /// Step row with the wrong width.
        step: usize,
        /// Expected entries (the layer count).
        expected: usize,
        /// Entries actually present.
        actual: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyDesigns => write!(f, "sweep has no designs"),
            SweepError::EmptyTraces => write!(f, "sweep has no traces"),
            SweepError::EmptyTrace { model } => {
                write!(f, "trace `{model}` has no layers or no steps")
            }
            SweepError::MismatchedTrace { model, step, expected, actual } => write!(
                f,
                "trace `{model}` step {step} has {actual} stat rows for {expected} layers"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Checks that a trace is simulatable: at least one layer, at least one
/// step, and every step row as wide as the layer list.
pub fn validate_trace(trace: &WorkloadTrace) -> Result<(), SweepError> {
    let layers = trace.layer_count();
    if layers == 0 || trace.step_count() == 0 {
        return Err(SweepError::EmptyTrace { model: trace.model.clone() });
    }
    for (step, row) in trace.steps.iter().enumerate() {
        if row.len() != layers {
            return Err(SweepError::MismatchedTrace {
                model: trace.model.clone(),
                step,
                expected: layers,
                actual: row.len(),
            });
        }
    }
    Ok(())
}

/// One (design × model) sweep request: every design is simulated on every
/// trace.
#[derive(Debug, Clone)]
pub struct SweepSpec<'t> {
    /// The design axis, in report column order.
    pub designs: Vec<Design>,
    /// The model axis (traced workloads), in report row order.
    pub traces: Vec<&'t WorkloadTrace>,
}

impl<'t> SweepSpec<'t> {
    /// Bundles the two axes of a sweep.
    pub fn new(designs: Vec<Design>, traces: Vec<&'t WorkloadTrace>) -> Self {
        SweepSpec { designs, traces }
    }

    /// Total number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.designs.len() * self.traces.len()
    }

    /// Checks that the sweep is runnable (non-empty axes, valid traces).
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.designs.is_empty() {
            return Err(SweepError::EmptyDesigns);
        }
        if self.traces.is_empty() {
            return Err(SweepError::EmptyTraces);
        }
        for trace in &self.traces {
            validate_trace(trace)?;
        }
        Ok(())
    }
}

/// One grid cell: a design simulated on a model trace.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Index into [`SweepReport::designs`].
    pub design: usize,
    /// Index into [`SweepReport::models`].
    pub model: usize,
    /// The full simulation result (cycles, energy breakdown, traffic,
    /// Defo report) — names repeated inside for self-describing JSON.
    pub run: RunResult,
    /// Speedup of this design over the GPU reference on the same trace
    /// (`gpu.cycles / run.cycles`).
    pub speedup_vs_gpu: f64,
}

/// The structured result of a full (design × model) sweep.
///
/// Cells are stored model-major: `cells[model * designs.len() + design]`,
/// so one model's row over all designs is contiguous ([`Self::model_row`]).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Design names, in [`SweepSpec::designs`] order.
    pub designs: Vec<String>,
    /// Model names (`WorkloadTrace::model`), in trace order.
    pub models: Vec<String>,
    /// All cells, model-major.
    pub cells: Vec<CellResult>,
    /// The GPU reference result per model (the Fig. 13 "GPU" column).
    pub gpu: Vec<RunResult>,
}

impl SweepReport {
    /// The cell for (`design`, `model`) by axis index.
    pub fn cell(&self, design: usize, model: usize) -> &CellResult {
        &self.cells[model * self.designs.len() + design]
    }

    /// One model's contiguous row over every design.
    pub fn model_row(&self, model: usize) -> &[CellResult] {
        let d = self.designs.len();
        &self.cells[model * d..(model + 1) * d]
    }

    /// The GPU reference for a model row.
    pub fn gpu(&self, model: usize) -> &RunResult {
        &self.gpu[model]
    }

    /// Index of the fastest (fewest-cycle) design for a model.
    pub fn best_design(&self, model: usize) -> usize {
        self.model_row(model)
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.run.cycles.total_cmp(&b.run.cycles))
            .map(|(i, _)| i)
            .expect("a validated sweep has at least one design")
    }

    /// Geometric-mean speedup of `design` over `baseline` across all
    /// models.
    pub fn geomean_speedup(&self, design: usize, baseline: usize) -> f64 {
        let n = self.models.len() as f64;
        let log_sum: f64 = (0..self.models.len())
            .map(|m| (self.cell(baseline, m).run.cycles / self.cell(design, m).run.cycles).ln())
            .sum();
        (log_sum / n).exp()
    }
}

/// Simulates one grid cell as a pure function of `(design, trace)` and the
/// model's precomputed GPU reference, returning the run result and the
/// speedup over that reference.
///
/// [`run_with_workers`] and the `serve` cell scheduler both go through this
/// exact function, which is what makes memoized cross-request serving
/// bit-identical to a fresh grid run: a cell's value never depends on which
/// engine (or which request) computed it.
pub fn simulate_cell(design: &Design, trace: &WorkloadTrace, gpu: &RunResult) -> (RunResult, f64) {
    let run = simulate(design, trace);
    let speedup_vs_gpu = gpu.cycles / run.cycles;
    (run, speedup_vs_gpu)
}

/// Executes the full grid with one worker per available core.
///
/// # Errors
///
/// Returns [`SweepError`] if either axis is empty or a trace is
/// degenerate; the engine never panics on malformed input.
pub fn run(spec: &SweepSpec<'_>) -> Result<SweepReport, SweepError> {
    run_with_workers(spec, pool::default_workers())
}

/// [`run`] with an explicit worker-thread cap (the result is bit-identical
/// for every cap — see the `grid_engine` integration tests).
///
/// # Errors
///
/// Returns [`SweepError`] if either axis is empty or a trace is
/// degenerate.
pub fn run_with_workers(spec: &SweepSpec<'_>, workers: usize) -> Result<SweepReport, SweepError> {
    spec.validate()?;
    let d = spec.designs.len();
    // The GPU reference first (one cheap pass per trace), then the grid
    // cells, which read the GPU cycles for `speedup_vs_gpu`. Both passes
    // fan out over the shared work-stealing pool; every result is computed
    // entirely on one thread, so the grid is bit-identical to the
    // sequential nested loop.
    // Telemetry spans are pure observers: the sweep span brackets the whole
    // grid on the calling thread, each cell span brackets exactly one
    // `simulate_cell` on whichever worker claimed it. With telemetry off
    // every guard is `None` and no name string is ever formatted.
    let _sweep = telemetry::on().then(|| {
        telemetry::span("grid", format!("sweep:{}x{}", spec.designs.len(), spec.traces.len()))
    });
    let gpu = pool::run_indexed(spec.traces.len(), workers, |m| {
        let _span = telemetry::on()
            .then(|| telemetry::span("grid", format!("gpu:{}", spec.traces[m].model)));
        simulate_gpu(spec.traces[m])
    });
    let cells = pool::run_indexed(spec.cell_count(), workers, |i| {
        let (model, design) = (i / d, i % d);
        let _span = telemetry::on().then(|| {
            // Cell coordinates ride as structured catapult args so trace
            // tooling can slice the grid by design/model without parsing
            // span names.
            telemetry::span_args(
                "grid",
                format!("cell:{}:{}", spec.designs[design].name, spec.traces[model].model),
                vec![
                    ("design".to_string(), Value::Str(spec.designs[design].name.clone())),
                    ("model".to_string(), Value::Str(spec.traces[model].model.clone())),
                    ("design_index".to_string(), design.to_json()),
                    ("model_index".to_string(), model.to_json()),
                ],
            )
        });
        let (run, speedup_vs_gpu) =
            simulate_cell(&spec.designs[design], spec.traces[model], &gpu[model]);
        CellResult { design, model, run, speedup_vs_gpu }
    });
    Ok(SweepReport {
        designs: spec.designs.iter().map(|d| d.name.clone()).collect(),
        models: spec.traces.iter().map(|t| t.model.clone()).collect(),
        cells,
        gpu,
    })
}

// --------------------------------------------------------------------------
// Serialization: binio (cache/IPC) and jsonio (serve front-end)
// --------------------------------------------------------------------------

impl ToBin for EnergyBreakdown {
    fn write(&self, out: &mut Vec<u8>) {
        self.compute.write(out);
        self.encoder.write(out);
        self.vpu.write(out);
        self.defo.write(out);
        self.sram.write(out);
        self.dram.write(out);
        self.static_.write(out);
    }
}

impl FromBin for EnergyBreakdown {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(EnergyBreakdown {
            compute: FromBin::read(r)?,
            encoder: FromBin::read(r)?,
            vpu: FromBin::read(r)?,
            defo: FromBin::read(r)?,
            sram: FromBin::read(r)?,
            dram: FromBin::read(r)?,
            static_: FromBin::read(r)?,
        })
    }
}

impl ToBin for DefoReport {
    fn write(&self, out: &mut Vec<u8>) {
        self.changed_ratio.write(out);
        self.accuracy.write(out);
    }
}

impl FromBin for DefoReport {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(DefoReport { changed_ratio: FromBin::read(r)?, accuracy: FromBin::read(r)? })
    }
}

impl ToBin for RunResult {
    fn write(&self, out: &mut Vec<u8>) {
        self.design.write(out);
        self.model.write(out);
        self.cycles.write(out);
        self.compute_cycles.write(out);
        self.stall_cycles.write(out);
        self.energy.write(out);
        self.dram_bytes.write(out);
        self.total_bytes.write(out);
        self.defo.write(out);
    }
}

impl FromBin for RunResult {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(RunResult {
            design: FromBin::read(r)?,
            model: FromBin::read(r)?,
            cycles: FromBin::read(r)?,
            compute_cycles: FromBin::read(r)?,
            stall_cycles: FromBin::read(r)?,
            energy: FromBin::read(r)?,
            dram_bytes: FromBin::read(r)?,
            total_bytes: FromBin::read(r)?,
            defo: FromBin::read(r)?,
        })
    }
}

impl ToBin for CellResult {
    fn write(&self, out: &mut Vec<u8>) {
        self.design.write(out);
        self.model.write(out);
        self.run.write(out);
        self.speedup_vs_gpu.write(out);
    }
}

impl FromBin for CellResult {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(CellResult {
            design: FromBin::read(r)?,
            model: FromBin::read(r)?,
            run: FromBin::read(r)?,
            speedup_vs_gpu: FromBin::read(r)?,
        })
    }
}

impl ToBin for SweepReport {
    fn write(&self, out: &mut Vec<u8>) {
        self.designs.write(out);
        self.models.write(out);
        self.cells.write(out);
        self.gpu.write(out);
    }
}

impl FromBin for SweepReport {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(SweepReport {
            designs: FromBin::read(r)?,
            models: FromBin::read(r)?,
            cells: FromBin::read(r)?,
            gpu: FromBin::read(r)?,
        })
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl ToJson for EnergyBreakdown {
    fn to_json(&self) -> Value {
        obj(vec![
            ("compute", self.compute.to_json()),
            ("encoder", self.encoder.to_json()),
            ("vpu", self.vpu.to_json()),
            ("defo", self.defo.to_json()),
            ("sram", self.sram.to_json()),
            ("dram", self.dram.to_json()),
            ("static", self.static_.to_json()),
        ])
    }
}

impl FromJson for EnergyBreakdown {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(EnergyBreakdown {
            compute: FromJson::from_json(v.get("compute")?)?,
            encoder: FromJson::from_json(v.get("encoder")?)?,
            vpu: FromJson::from_json(v.get("vpu")?)?,
            defo: FromJson::from_json(v.get("defo")?)?,
            sram: FromJson::from_json(v.get("sram")?)?,
            dram: FromJson::from_json(v.get("dram")?)?,
            static_: FromJson::from_json(v.get("static")?)?,
        })
    }
}

impl ToJson for DefoReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("changed_ratio", self.changed_ratio.to_json()),
            ("accuracy", self.accuracy.to_json()),
        ])
    }
}

impl FromJson for DefoReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(DefoReport {
            changed_ratio: FromJson::from_json(v.get("changed_ratio")?)?,
            accuracy: FromJson::from_json(v.get("accuracy")?)?,
        })
    }
}

impl ToJson for RunResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("design", self.design.to_json()),
            ("model", self.model.to_json()),
            ("cycles", self.cycles.to_json()),
            ("compute_cycles", self.compute_cycles.to_json()),
            ("stall_cycles", self.stall_cycles.to_json()),
            ("energy", self.energy.to_json()),
            ("dram_bytes", self.dram_bytes.to_json()),
            ("total_bytes", self.total_bytes.to_json()),
            ("defo", self.defo.to_json()),
        ])
    }
}

impl FromJson for RunResult {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(RunResult {
            design: FromJson::from_json(v.get("design")?)?,
            model: FromJson::from_json(v.get("model")?)?,
            cycles: FromJson::from_json(v.get("cycles")?)?,
            compute_cycles: FromJson::from_json(v.get("compute_cycles")?)?,
            stall_cycles: FromJson::from_json(v.get("stall_cycles")?)?,
            energy: FromJson::from_json(v.get("energy")?)?,
            dram_bytes: FromJson::from_json(v.get("dram_bytes")?)?,
            total_bytes: FromJson::from_json(v.get("total_bytes")?)?,
            defo: FromJson::from_json(v.get("defo")?)?,
        })
    }
}

impl ToJson for CellResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("design", self.design.to_json()),
            ("model", self.model.to_json()),
            ("run", self.run.to_json()),
            ("speedup_vs_gpu", self.speedup_vs_gpu.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(CellResult {
            design: FromJson::from_json(v.get("design")?)?,
            model: FromJson::from_json(v.get("model")?)?,
            run: FromJson::from_json(v.get("run")?)?,
            speedup_vs_gpu: FromJson::from_json(v.get("speedup_vs_gpu")?)?,
        })
    }
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("designs", self.designs.to_json()),
            ("models", self.models.to_json()),
            ("cells", self.cells.to_json()),
            ("gpu", self.gpu.to_json()),
        ])
    }
}

impl FromJson for SweepReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SweepReport {
            designs: FromJson::from_json(v.get("designs")?)?,
            models: FromJson::from_json(v.get("models")?)?,
            cells: FromJson::from_json(v.get("cells")?)?,
            gpu: FromJson::from_json(v.get("gpu")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::synth;

    #[test]
    fn grid_matches_sequential_nested_loop() {
        let designs = vec![Design::itc(), Design::cambricon_d(), Design::ditto()];
        let traces = [synth::trace(3, 5, 100_000, 64, true), synth::trace(2, 4, 50_000, 8, false)];
        let spec = SweepSpec::new(designs.clone(), traces.iter().collect());
        let report = run(&spec).unwrap();
        assert_eq!(report.models, vec!["SYNTH", "SYNTH"]);
        for (m, trace) in traces.iter().enumerate() {
            let gpu = simulate_gpu(trace);
            assert_eq!(report.gpu(m).cycles.to_bits(), gpu.cycles.to_bits());
            for (d, design) in designs.iter().enumerate() {
                let cell = report.cell(d, m);
                assert_eq!(cell.design, d);
                assert_eq!(cell.model, m);
                let seq = simulate(design, trace);
                assert_eq!(cell.run.cycles.to_bits(), seq.cycles.to_bits());
                assert_eq!(cell.speedup_vs_gpu.to_bits(), (gpu.cycles / seq.cycles).to_bits());
            }
        }
    }

    #[test]
    fn empty_axes_error_cleanly() {
        let trace = synth::trace(2, 3, 10_000, 16, true);
        let no_designs = SweepSpec::new(vec![], vec![&trace]);
        assert_eq!(run(&no_designs).unwrap_err(), SweepError::EmptyDesigns);
        let no_traces = SweepSpec::new(vec![Design::itc()], vec![]);
        assert_eq!(run(&no_traces).unwrap_err(), SweepError::EmptyTraces);
    }

    #[test]
    fn degenerate_traces_error_cleanly() {
        let mut empty = synth::trace(2, 3, 10_000, 16, true);
        empty.steps.clear();
        let spec = SweepSpec::new(vec![Design::itc()], vec![&empty]);
        assert_eq!(run(&spec).unwrap_err(), SweepError::EmptyTrace { model: "SYNTH".into() });

        let mut ragged = synth::trace(2, 3, 10_000, 16, true);
        ragged.steps[1].pop();
        let spec = SweepSpec::new(vec![Design::itc()], vec![&ragged]);
        assert_eq!(
            run(&spec).unwrap_err(),
            SweepError::MismatchedTrace { model: "SYNTH".into(), step: 1, expected: 2, actual: 1 }
        );
    }

    #[test]
    fn aggregations_pick_fastest_and_geomean() {
        let trace = synth::trace(4, 6, 200_000, 512, true);
        let spec = SweepSpec::new(vec![Design::itc(), Design::ditto()], vec![&trace, &trace]);
        let report = run(&spec).unwrap();
        // Ditto beats ITC on paper-magnitude layers.
        assert_eq!(report.best_design(0), 1);
        let g = report.geomean_speedup(1, 0);
        let per_model = report.cell(0, 0).run.cycles / report.cell(1, 0).run.cycles;
        // Both rows are the same trace, so the geomean equals the ratio.
        assert!((g - per_model).abs() < 1e-12 * per_model, "{g} vs {per_model}");
        assert_eq!(report.geomean_speedup(0, 0), 1.0);
    }

    #[test]
    fn report_roundtrips_through_both_codecs() {
        let trace = synth::trace(3, 4, 50_000, 64, false);
        let spec = SweepSpec::new(vec![Design::ditto(), Design::diffy()], vec![&trace]);
        let report = run(&spec).unwrap();

        let bin = ditto_core::binio::to_vec(&report);
        let back: SweepReport = ditto_core::binio::from_slice(&bin).unwrap();
        assert_eq!(back.designs, report.designs);
        assert_eq!(back.models, report.models);
        for (a, b) in back.cells.iter().zip(&report.cells) {
            assert_eq!(a.run.cycles.to_bits(), b.run.cycles.to_bits());
            assert_eq!(a.run.energy.total().to_bits(), b.run.energy.total().to_bits());
            assert_eq!(a.speedup_vs_gpu.to_bits(), b.speedup_vs_gpu.to_bits());
            assert_eq!(a.run.defo.is_some(), b.run.defo.is_some());
        }

        let json = ditto_core::jsonio::to_vec(&report);
        let back: SweepReport = ditto_core::jsonio::from_slice(&json).unwrap();
        for (a, b) in back.cells.iter().zip(&report.cells) {
            // `{}` prints the shortest f64 representation that round-trips,
            // so JSON is exact for finite values too.
            assert_eq!(a.run.cycles.to_bits(), b.run.cycles.to_bits());
            assert_eq!(a.speedup_vs_gpu.to_bits(), b.speedup_vs_gpu.to_bits());
        }
    }
}
