//! Behavioral model of the Vector Processing Unit (§V-B).
//!
//! The VPU executes everything that is not a linear layer: dequantization
//! of the 32-bit accumulators, the non-linear functions (SiLU, GeLU,
//! softmax, normalizations), re-quantization to the 8-bit activation
//! buffers, and the stage-3 **summation** of difference processing. Stages
//! are selectively bypassed per layer (a layer with no non-linear
//! consumer skips the function stage entirely, saving energy).

use tensor::ops;
use tensor::{Result, Tensor};

/// Which non-linear function (if any) the VPU applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpuFunction {
    /// Pass-through (stage bypassed).
    Bypass,
    /// SiLU activation.
    Silu,
    /// GeLU activation.
    Gelu,
    /// Row-wise softmax (rank-2 input).
    Softmax,
}

/// Operation counters for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpuCounters {
    /// Dequantized elements.
    pub dequant: u64,
    /// Elements passed through a non-linear function.
    pub nonlinear: u64,
    /// Re-quantized elements.
    pub quant: u64,
    /// Summed elements (stage-3 of difference processing).
    pub summation: u64,
}

/// The Vector Processing Unit.
#[derive(Debug, Clone, Default)]
pub struct VectorProcessingUnit {
    counters: VpuCounters,
}

impl VectorProcessingUnit {
    /// A VPU with cleared counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated operation counters.
    pub fn counters(&self) -> VpuCounters {
        self.counters
    }

    /// Dequantizes i32 accumulators with `scale` into f32.
    pub fn dequantize(&mut self, acc: &[i32], scale: f32, dims: &[usize]) -> Result<Tensor> {
        self.counters.dequant += acc.len() as u64;
        Tensor::from_vec(acc.iter().map(|&v| v as f32 * scale).collect(), dims)
    }

    /// Stage-3 summation: adds the previous step's output to a
    /// difference-domain tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if operands disagree.
    pub fn summation(&mut self, diff: &Tensor, prev: &Tensor) -> Result<Tensor> {
        self.counters.summation += diff.len() as u64;
        ops::add(diff, prev)
    }

    /// Applies (or bypasses) the configured non-linear function.
    ///
    /// # Errors
    ///
    /// Returns a shape error from `Softmax` on non-rank-2 input.
    pub fn apply(&mut self, f: VpuFunction, x: &Tensor) -> Result<Tensor> {
        if f != VpuFunction::Bypass {
            self.counters.nonlinear += x.len() as u64;
        }
        match f {
            VpuFunction::Bypass => Ok(x.clone()),
            VpuFunction::Silu => Ok(ops::silu(x)),
            VpuFunction::Gelu => Ok(ops::gelu(x)),
            VpuFunction::Softmax => ops::softmax_rows(x),
        }
    }

    /// Re-quantizes to the 8-bit activation buffer with the given scale.
    pub fn quantize(&mut self, x: &Tensor, scale: f32) -> quant::QTensor {
        self.counters.quant += x.len() as u64;
        quant::QTensor::quantize_with_scale(x, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_dequant_function_quant() {
        let mut vpu = VectorProcessingUnit::new();
        let acc = vec![127i32, -254, 0, 64];
        let x = vpu.dequantize(&acc, 0.01, &[1, 4]).unwrap();
        assert!((x.as_slice()[0] - 1.27).abs() < 1e-6);
        let y = vpu.apply(VpuFunction::Silu, &x).unwrap();
        let q = vpu.quantize(&y, 0.02);
        assert_eq!(q.len(), 4);
        let c = vpu.counters();
        assert_eq!(c.dequant, 4);
        assert_eq!(c.nonlinear, 4);
        assert_eq!(c.quant, 4);
        assert_eq!(c.summation, 0);
    }

    #[test]
    fn bypass_skips_function_counting() {
        let mut vpu = VectorProcessingUnit::new();
        let x = Tensor::full(&[3], 1.5);
        let y = vpu.apply(VpuFunction::Bypass, &x).unwrap();
        assert_eq!(y, x);
        assert_eq!(vpu.counters().nonlinear, 0);
    }

    #[test]
    fn summation_matches_elementwise_add() {
        let mut vpu = VectorProcessingUnit::new();
        let d = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let p = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let s = vpu.summation(&d, &p).unwrap();
        assert_eq!(s.as_slice(), &[11.0, 18.0]);
        assert_eq!(vpu.counters().summation, 2);
        assert!(vpu.summation(&d, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn softmax_requires_rank2() {
        let mut vpu = VectorProcessingUnit::new();
        assert!(vpu.apply(VpuFunction::Softmax, &Tensor::zeros(&[4])).is_err());
        let x = Tensor::zeros(&[2, 2]);
        let y = vpu.apply(VpuFunction::Softmax, &x).unwrap();
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
    }
}
