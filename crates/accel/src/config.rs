//! Hardware configurations (Table III).
//!
//! All designs are iso-area at 64.48 mm² / 192 MB SRAM / 1 GHz, matching
//! Table III. `sim_scale` divides PE counts and [`BW_SIM_SCALE`] divides
//! DRAM bandwidth so the scaled-down model zoo exercises the same
//! compute-to-memory balance the paper's full-size models hit on the
//! full-size hardware — the decisive dimensionless quantity is
//! MAC-slots-per-DRAM-byte per unit of operand reuse, which this preserves
//! (DESIGN.md §4).

/// Static hardware parameters of one accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Table III row name.
    pub name: &'static str,
    /// Number of 4-bit×8-bit multipliers (0 for pure A8W8 designs).
    pub pe_a4w8: u64,
    /// Number of 8-bit×8-bit MAC units (ITC PEs / Cambricon-D outlier PEs).
    pub pe_a8w8: u64,
    /// Table III power budget (W).
    pub power_w: f64,
    /// On-chip SRAM (MB) — holds weights and intra-step activations.
    pub sram_mb: u64,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Clock (GHz).
    pub freq_ghz: f64,
    /// DRAM bandwidth in bytes per cycle (256 B/cycle @1 GHz = 256 GB/s).
    pub dram_bw: f64,
    /// PE-count divisor adapting paper-size hardware to the scaled model
    /// zoo (bandwidth is divided by [`BW_SIM_SCALE`]; see module docs).
    pub sim_scale: f64,
}

/// Default simulation scale (see module docs).
pub const DEFAULT_SIM_SCALE: f64 = 16.0;

/// Default DRAM bandwidth (bytes per cycle at 1 GHz): 256 GB/s, an
/// HBM-class interface.
pub const DEFAULT_DRAM_BW: f64 = 256.0;

/// Bandwidth simulation scale. Smaller than [`DEFAULT_SIM_SCALE`] because
/// the scaled-down model zoo shrinks *reuse* dimensions (output channels,
/// token/feature widths: 32–96 vs the paper's 256–1280) along with operand
/// sizes — its layers have intrinsically lower arithmetic intensity than
/// the paper's. Scaling bandwidth by the full PE factor would therefore
/// misclassify nearly every layer as memory-bound; a 3× bandwidth scale
/// restores the paper's compute-to-traffic balance, in which wide layers
/// profit from temporal differences and only low-reuse layers are
/// memory-bound (the ~14% Defo changes back in Fig. 17).
pub const BW_SIM_SCALE: f64 = 3.0;

impl HwConfig {
    /// Integer Tensor Core baseline: 27 648 A8W8 PEs (Table III).
    pub fn itc() -> Self {
        HwConfig {
            name: "ITC",
            pe_a4w8: 0,
            pe_a8w8: 27_648,
            power_w: 36.9,
            sram_mb: 192,
            area_mm2: 64.48,
            freq_ghz: 1.0,
            dram_bw: DEFAULT_DRAM_BW,
            sim_scale: DEFAULT_SIM_SCALE,
        }
    }

    /// Diffy: 39 398 A4W8 PEs (Table III).
    pub fn diffy() -> Self {
        HwConfig { name: "Diffy", pe_a4w8: 39_398, pe_a8w8: 0, power_w: 33.6, ..Self::itc() }
    }

    /// Cambricon-D: 38 280 normal A4W8 + 2 552 outlier A8W8 PEs (Table III).
    pub fn cambricon_d() -> Self {
        HwConfig {
            name: "Cambricon-D",
            pe_a4w8: 38_280,
            pe_a8w8: 2_552,
            power_w: 33.3,
            ..Self::itc()
        }
    }

    /// Ditto hardware: 39 398 A4W8 PEs (Table III).
    pub fn ditto() -> Self {
        HwConfig { name: "Ditto", pe_a4w8: 39_398, pe_a8w8: 0, power_w: 33.6, ..Self::itc() }
    }

    /// Effective 4-bit slots per cycle after simulation scaling.
    pub fn slots4_per_cycle(&self) -> f64 {
        self.pe_a4w8 as f64 / self.sim_scale
    }

    /// Effective 8-bit MACs per cycle after simulation scaling.
    pub fn macs8_per_cycle(&self) -> f64 {
        self.pe_a8w8 as f64 / self.sim_scale
    }

    /// Effective DRAM bytes per cycle after simulation scaling.
    pub fn dram_bw_eff(&self) -> f64 {
        self.dram_bw / BW_SIM_SCALE
    }

    /// All Table III rows, for the `table3_hw_configs` bench target.
    pub fn table3() -> [HwConfig; 4] {
        [Self::itc(), Self::diffy(), Self::cambricon_d(), Self::ditto()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_match_paper() {
        let itc = HwConfig::itc();
        assert_eq!(itc.pe_a8w8, 27_648);
        assert_eq!(itc.power_w, 36.9);
        let diffy = HwConfig::diffy();
        assert_eq!(diffy.pe_a4w8, 39_398);
        let cam = HwConfig::cambricon_d();
        assert_eq!(cam.pe_a4w8, 38_280);
        assert_eq!(cam.pe_a8w8, 2_552);
        let ditto = HwConfig::ditto();
        assert_eq!(ditto.pe_a4w8, 39_398);
        for hw in HwConfig::table3() {
            assert_eq!(hw.sram_mb, 192);
            assert_eq!(hw.freq_ghz, 1.0);
            assert!((hw.area_mm2 - 64.48).abs() < 1e-9);
        }
    }

    #[test]
    fn scaling_divides_pes_and_bandwidth() {
        let hw = HwConfig::ditto();
        assert!((hw.slots4_per_cycle() - 39_398.0 / 16.0).abs() < 1e-9);
        assert!((hw.dram_bw_eff() - 256.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn iso_area_pe_tradeoff() {
        // 27 648 A8W8 ≈ 39 398 A4W8 in area → an 8×8 MAC costs ~1.42× a
        // 4×8 MAC, the iso-area assumption behind Table III.
        let ratio = 39_398.0 / 27_648.0;
        assert!(ratio > 1.3 && ratio < 1.6);
    }
}
