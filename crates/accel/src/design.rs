//! Accelerator design points: capability flags over a [`HwConfig`].
//!
//! One unified simulator covers every design the paper evaluates; designs
//! differ only in which mechanisms they enable (DESIGN.md §4):
//!
//! | Design | temporal | spatial | zero-skip | dyn-bitwidth | outlier PE | sign-mask | attn-diff | Defo |
//! |---|---|---|---|---|---|---|---|---|
//! | ITC | – | – | – | – | – | – | – | – |
//! | Diffy | – | ✓ | ✓ | ✓ | – | – | ✓(rows) | – |
//! | Cambricon-D | ✓ | – | – | ✓ | ✓ | ✓ | ✓(integrated) | – |
//! | Ditto | ✓ | – | ✓ | ✓ | – | – | ✓ | Static |
//! | Ditto+ | ✓ | ✓ | ✓ | ✓ | – | – | ✓ | Plus |
//! | DS / DB / DB&DS / +Attn (Fig. 16) | ✓ | – | per flag | per flag | – | – | per flag | – |

use crate::config::HwConfig;

/// Defo execution-flow policy (§IV-B, §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefoMode {
    /// No runtime flow selection: difference mode whenever available.
    None,
    /// The Ditto Defo: first step original activations (cycles recorded),
    /// second step differences (cycles recorded), later steps fixed per
    /// layer by the step-1 vs step-0 comparison.
    Static,
    /// Defo+: the original-activation fallback is replaced by spatial
    /// difference processing (first step and act-chosen layers).
    Plus,
    /// Dynamic-Ditto (Fig. 19): like `Static` but keeps monitoring and can
    /// switch difference → original at any later step (one-way, since the
    /// difference cycle count is unobservable while running originals).
    Dynamic,
    /// Oracle: per layer *and per step*, the cheaper of temporal difference
    /// and original-activation execution (Fig. 18's Ideal-Ditto).
    Ideal,
    /// Oracle with the spatial fallback (Ideal-Ditto+).
    IdealPlus,
}

impl DefoMode {
    /// Whether the fallback execution mode is spatial differencing.
    pub fn spatial_fallback(self) -> bool {
        matches!(self, DefoMode::Plus | DefoMode::IdealPlus)
    }
}

/// A complete design point.
#[derive(Debug, Clone)]
pub struct Design {
    /// Display name (Fig. 13 / Fig. 15 / Fig. 16 labels).
    pub name: String,
    /// Hardware resources.
    pub hw: HwConfig,
    /// Exploits temporal (adjacent-step) differences.
    pub temporal: bool,
    /// Exploits spatial (row) differences.
    pub spatial: bool,
    /// Skips zero values via the Encoding Unit reordering.
    pub zero_skip: bool,
    /// Executes ≤4-bit values on single 4-bit multipliers.
    pub dyn_bitwidth: bool,
    /// Routes over-4-bit values to dedicated outlier PEs (Cambricon-D)
    /// instead of pairing 4-bit multipliers.
    pub outlier_pe: bool,
    /// Sign-mask data flow: absorbs difference-processing memory overhead
    /// at SiLU / Group-Norm boundaries only (Cambricon-D).
    pub sign_mask: bool,
    /// Applies difference processing to attention matmuls via the
    /// two-sub-operation decomposition (§IV-A).
    pub attention_diff: bool,
    /// Execution-flow policy.
    pub defo: DefoMode,
}

impl Design {
    /// Integer-Tensor-Core baseline: dense A8W8.
    pub fn itc() -> Self {
        Design {
            name: "ITC".into(),
            hw: HwConfig::itc(),
            temporal: false,
            spatial: false,
            zero_skip: false,
            dyn_bitwidth: false,
            outlier_pe: false,
            sign_mask: false,
            attention_diff: false,
            defo: DefoMode::None,
        }
    }

    /// Diffy (extended to FC/attention rows, §VI-A).
    pub fn diffy() -> Self {
        Design {
            name: "Diffy".into(),
            hw: HwConfig::diffy(),
            spatial: true,
            zero_skip: true,
            dyn_bitwidth: true,
            attention_diff: true,
            ..Self::itc()
        }
    }

    /// Cambricon-D with the paper's fair-comparison integration (dependency
    /// check + attention differences, §VI-A).
    pub fn cambricon_d() -> Self {
        Design {
            name: "Cam-D".into(),
            hw: HwConfig::cambricon_d(),
            temporal: true,
            dyn_bitwidth: true,
            outlier_pe: true,
            sign_mask: true,
            attention_diff: true,
            ..Self::itc()
        }
    }

    /// The Ditto hardware.
    pub fn ditto() -> Self {
        Design {
            name: "Ditto".into(),
            hw: HwConfig::ditto(),
            temporal: true,
            zero_skip: true,
            dyn_bitwidth: true,
            attention_diff: true,
            defo: DefoMode::Static,
            ..Self::itc()
        }
    }

    /// Ditto+ (spatial fallback, §IV-B).
    pub fn ditto_plus() -> Self {
        Design { name: "Ditto+".into(), spatial: true, defo: DefoMode::Plus, ..Self::ditto() }
    }

    /// Fig. 16 ablation: dynamic sparsity only (8-bit PEs, iso-area).
    pub fn ds() -> Self {
        Design {
            name: "DS".into(),
            hw: HwConfig { name: "DS", ..HwConfig::itc() },
            temporal: true,
            zero_skip: true,
            ..Self::itc()
        }
    }

    /// Fig. 16 ablation: dynamic bit-width only (4-bit PEs, no skipping).
    pub fn db() -> Self {
        Design {
            name: "DB".into(),
            hw: HwConfig { name: "DB", ..HwConfig::ditto() },
            temporal: true,
            dyn_bitwidth: true,
            ..Self::itc()
        }
    }

    /// Fig. 16 ablation: sparsity + bit-width, attention in act mode.
    pub fn db_ds() -> Self {
        Design { name: "DB&DS".into(), zero_skip: true, ..Self::db() }
    }

    /// Fig. 16 ablation: sparsity + bit-width + attention differences.
    pub fn db_ds_attn() -> Self {
        Design { name: "DB&DS&Attn.".into(), attention_diff: true, ..Self::db_ds() }
    }

    /// Ideal-Ditto (oracle Defo, Fig. 18).
    pub fn ideal_ditto() -> Self {
        Design { name: "Ideal-Ditto".into(), defo: DefoMode::Ideal, ..Self::ditto() }
    }

    /// Ideal-Ditto+ (oracle Defo with spatial fallback, Fig. 18).
    pub fn ideal_ditto_plus() -> Self {
        Design { name: "Ideal-Ditto+".into(), defo: DefoMode::IdealPlus, ..Self::ditto_plus() }
    }

    /// Dynamic-Ditto (Fig. 19).
    pub fn dynamic_ditto() -> Self {
        Design { name: "Dyn.-Ditto".into(), defo: DefoMode::Dynamic, ..Self::ditto() }
    }

    /// Fig. 15 variant: original Cambricon-D (no attention differences).
    pub fn cambricon_d_original() -> Self {
        Design { name: "Org. Cam-D".into(), attention_diff: false, ..Self::cambricon_d() }
    }

    /// Fig. 15 variant: Cambricon-D + attention differences.
    pub fn cambricon_d_attn() -> Self {
        Design { name: "Org. Cam-D & Attn. Diff.".into(), ..Self::cambricon_d() }
    }

    /// Fig. 15 variant: Cambricon-D + attention differences + Defo.
    pub fn cambricon_d_attn_defo() -> Self {
        Design {
            name: "Org. Cam-D & Attn. Diff. & Defo".into(),
            defo: DefoMode::Static,
            ..Self::cambricon_d()
        }
    }

    /// Fig. 15 variant: Cambricon-D + attention differences + Defo+.
    pub fn cambricon_d_attn_defo_plus() -> Self {
        Design {
            name: "Org. Cam-D & Attn. Diff. & Defo+".into(),
            defo: DefoMode::Plus,
            spatial: true,
            ..Self::cambricon_d()
        }
    }

    /// Fig. 15 variant: Ditto + Cambricon-D's sign-mask data flow.
    pub fn ditto_sign_mask() -> Self {
        Design { name: "Ditto & Sign-mask".into(), sign_mask: true, ..Self::ditto() }
    }

    /// Fig. 15 variant: Ditto+ + sign-mask.
    pub fn ditto_plus_sign_mask() -> Self {
        Design { name: "Ditto+ & Sign-mask".into(), sign_mask: true, ..Self::ditto_plus() }
    }

    /// The Fig. 13 comparison set (hardware designs; the GPU is handled by
    /// [`crate::gpu`]).
    pub fn fig13_set() -> Vec<Design> {
        vec![Self::itc(), Self::diffy(), Self::cambricon_d(), Self::ditto(), Self::ditto_plus()]
    }

    /// The Fig. 16 ablation set.
    pub fn fig16_set() -> Vec<Design> {
        vec![
            Self::ds(),
            Self::db(),
            Self::db_ds(),
            Self::db_ds_attn(),
            Self::ditto(),
            Self::ditto_plus(),
        ]
    }

    /// Every public design constructor: the Fig. 13 comparison set, the
    /// Fig. 16 DS/DB ablations, the Fig. 15 cross-application variants,
    /// and the ideal / dynamic Defo policies. This is the design namespace
    /// the `serve` front-end resolves request names against.
    pub fn catalog() -> Vec<Design> {
        vec![
            Self::itc(),
            Self::diffy(),
            Self::cambricon_d(),
            Self::ditto(),
            Self::ditto_plus(),
            Self::ds(),
            Self::db(),
            Self::db_ds(),
            Self::db_ds_attn(),
            Self::ideal_ditto(),
            Self::ideal_ditto_plus(),
            Self::dynamic_ditto(),
            Self::cambricon_d_original(),
            Self::cambricon_d_attn(),
            Self::cambricon_d_attn_defo(),
            Self::cambricon_d_attn_defo_plus(),
            Self::ditto_sign_mask(),
            Self::ditto_plus_sign_mask(),
        ]
    }

    /// Looks a design up by its display name (case-insensitive), e.g.
    /// `"Ditto+"` or `"Cam-D"`.
    pub fn from_name(name: &str) -> Option<Design> {
        Self::catalog().into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// The Fig. 15 cross-application set.
    pub fn fig15_set() -> Vec<Design> {
        vec![
            Self::cambricon_d_original(),
            Self::cambricon_d_attn(),
            Self::cambricon_d_attn_defo(),
            Self::cambricon_d_attn_defo_plus(),
            Self::ditto(),
            Self::ditto_sign_mask(),
            Self::ditto_plus(),
            Self::ditto_plus_sign_mask(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_capability_table() {
        let itc = Design::itc();
        assert!(!itc.temporal && !itc.spatial && !itc.zero_skip);
        let diffy = Design::diffy();
        assert!(diffy.spatial && !diffy.temporal && diffy.zero_skip);
        let cam = Design::cambricon_d();
        assert!(cam.temporal && cam.outlier_pe && cam.sign_mask && !cam.zero_skip);
        let ditto = Design::ditto();
        assert!(ditto.temporal && ditto.zero_skip && ditto.dyn_bitwidth);
        assert_eq!(ditto.defo, DefoMode::Static);
        assert!(!ditto.outlier_pe && !ditto.sign_mask);
        let plus = Design::ditto_plus();
        assert!(plus.spatial);
        assert!(plus.defo.spatial_fallback());
    }

    #[test]
    fn ablation_set_is_ordered_like_fig16() {
        let names: Vec<String> = Design::fig16_set().into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["DS", "DB", "DB&DS", "DB&DS&Attn.", "Ditto", "Ditto+"]);
    }

    #[test]
    fn ds_uses_8bit_pes_db_uses_4bit() {
        assert!(Design::ds().hw.pe_a8w8 > 0);
        assert_eq!(Design::ds().hw.pe_a4w8, 0);
        assert!(Design::db().hw.pe_a4w8 > 0);
        assert_eq!(Design::db().hw.pe_a8w8, 0);
    }

    #[test]
    fn fig15_set_has_eight_variants() {
        assert_eq!(Design::fig15_set().len(), 8);
    }

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let catalog = Design::catalog();
        assert_eq!(catalog.len(), 18);
        for d in &catalog {
            let found = Design::from_name(&d.name).expect("every catalog name resolves");
            assert_eq!(found.name, d.name);
        }
        let names: std::collections::HashSet<_> = catalog.iter().map(|d| &d.name).collect();
        assert_eq!(names.len(), catalog.len(), "catalog names collide");
        assert!(Design::from_name("ditto+").is_some(), "lookup is case-insensitive");
        assert!(Design::from_name("no-such-design").is_none());
    }
}
