//! Behavioral model of the Defo Unit (§V-B): the layer table and the
//! compare logic steering the per-layer execution type.
//!
//! The paper sizes the table at **512 entries** (the largest evaluated
//! model has 347 layers, rounded to a power of two), each **33 bits**:
//! 16-bit first-time-step cycles, 16-bit second-time-step cycles, and a
//! 1-bit later-step decision. Cycle counts saturate at the 16-bit maximum.
//! The unit is a control structure only (0.01% of area) and does not scale
//! with throughput.

/// Number of layer-table entries.
pub const TABLE_ENTRIES: usize = 512;
/// Bits per entry: 16 + 16 + 1.
pub const ENTRY_BITS: usize = 33;

/// One 33-bit layer-table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerEntry {
    /// First-time-step (original activation) cycles, saturated to 16 bits.
    pub act_cycles: u16,
    /// Second-time-step (difference processing) cycles, saturated.
    pub diff_cycles: u16,
    /// Later-step decision: `true` = keep difference processing.
    pub use_diff: bool,
}

/// The Defo Unit's layer table plus compare logic.
#[derive(Debug, Clone)]
pub struct DefoUnit {
    table: Vec<LayerEntry>,
}

impl Default for DefoUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl DefoUnit {
    /// A Defo Unit with a cleared 512-entry table.
    pub fn new() -> Self {
        DefoUnit { table: vec![LayerEntry::default(); TABLE_ENTRIES] }
    }

    fn saturate(cycles: u64) -> u16 {
        cycles.min(u16::MAX as u64) as u16
    }

    /// Records layer `l`'s first-time-step cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the table (a model with more than 512 layers —
    /// beyond the paper's provisioning).
    pub fn record_act(&mut self, l: usize, cycles: u64) {
        self.table[l].act_cycles = Self::saturate(cycles);
    }

    /// Records layer `l`'s second-time-step cycle count and runs the
    /// comparator: difference processing is kept iff it was strictly
    /// cheaper than the recorded original-activation execution (Fig. 9).
    pub fn record_diff_and_decide(&mut self, l: usize, cycles: u64) -> bool {
        let e = &mut self.table[l];
        e.diff_cycles = Self::saturate(cycles);
        e.use_diff = e.diff_cycles < e.act_cycles;
        e.use_diff
    }

    /// The stored decision for layer `l`.
    pub fn use_diff(&self, l: usize) -> bool {
        self.table[l].use_diff
    }

    /// Dynamic-Ditto update (§VI-C): while a layer runs in difference mode,
    /// a later step's observed cycles can revoke the decision (one-way —
    /// act-mode cycles stay observable but difference cycles do not).
    pub fn observe_diff_cycles(&mut self, l: usize, cycles: u64) -> bool {
        let e = &mut self.table[l];
        if e.use_diff && Self::saturate(cycles) > e.act_cycles {
            e.use_diff = false;
        }
        e.use_diff
    }

    /// Raw entry access (for reports).
    pub fn entry(&self, l: usize) -> LayerEntry {
        self.table[l]
    }

    /// Total table storage in bits (the paper's 512 × 33).
    pub fn storage_bits(&self) -> usize {
        TABLE_ENTRIES * ENTRY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_provisioning() {
        let u = DefoUnit::new();
        // The paper's provisioning: 512 entries cover the largest
        // evaluated model's 347 layers.
        let (entries, largest_model_layers) = (TABLE_ENTRIES, 347);
        assert!(entries >= largest_model_layers);
        assert_eq!(u.storage_bits(), 512 * 33);
    }

    #[test]
    fn comparator_keeps_cheaper_mode() {
        let mut u = DefoUnit::new();
        u.record_act(0, 1000);
        assert!(u.record_diff_and_decide(0, 400));
        assert!(u.use_diff(0));
        u.record_act(1, 300);
        assert!(!u.record_diff_and_decide(1, 400));
        assert!(!u.use_diff(1));
        // Ties favour original activations (strict comparison).
        u.record_act(2, 500);
        assert!(!u.record_diff_and_decide(2, 500));
    }

    #[test]
    fn cycles_saturate_at_16_bits() {
        let mut u = DefoUnit::new();
        u.record_act(0, 1_000_000);
        assert_eq!(u.entry(0).act_cycles, u16::MAX);
        // Saturated comparisons still behave sanely.
        assert!(!u.record_diff_and_decide(0, 2_000_000));
    }

    #[test]
    fn dynamic_revocation_is_one_way() {
        let mut u = DefoUnit::new();
        u.record_act(0, 500);
        u.record_diff_and_decide(0, 100);
        assert!(u.observe_diff_cycles(0, 200)); // still cheaper → keep
        assert!(!u.observe_diff_cycles(0, 600)); // slower → revoke
        assert!(!u.observe_diff_cycles(0, 50)); // revocation is permanent
    }

    #[test]
    #[should_panic]
    fn out_of_range_layer_panics() {
        DefoUnit::new().record_act(TABLE_ENTRIES, 1);
    }
}
