//! Behavioral model of the Encoding Unit (§V-B, Fig. 11).
//!
//! The Encoding Unit has three functions: **calculate differences**
//! (subtractor over the previous/current activation streams), **determine
//! bit-width** (two zero-comparators over the high and low nibble, fused
//! into a 2-bit control signal), and **reorder** (skip zeros, enqueue the
//! low nibble of 4-bit data, enqueue both nibbles of 8-bit data with the
//! high nibble steered to a shifter-equipped multiplier lane).
//!
//! [`EncodingUnit::encode`] produces the exact lane stream the Compute Unit
//! consumes; [`decode`](EncodedStream::decode) reconstructs the differences
//! bit-exactly, which the tests use to prove the reorder logic loses
//! nothing.

/// The 2-bit control signal of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// `00` — zero difference: skipped entirely.
    ZeroSkip,
    /// `01` — enqueue the lower 4-bit part only.
    EnqueueLow,
    /// `1X` — enqueue both parts (8-bit datum split into two nibbles).
    EnqueueBoth,
}

/// One multiplier-lane entry: a signed 4-bit value plus the shift flag
/// ("metadata" in Fig. 12) and the element index it accumulates into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneEntry {
    /// Signed nibble in `-8..=7`.
    pub nibble: i8,
    /// Whether the product must be shifted left by 4 (high-nibble part).
    pub shift: bool,
    /// Index of the source element (for weight pairing / accumulation).
    pub index: usize,
}

/// The reordered lane stream plus per-element control signals.
#[derive(Debug, Clone, Default)]
pub struct EncodedStream {
    /// Lane entries in issue order.
    pub entries: Vec<LaneEntry>,
    /// Per-source-element control classification.
    pub controls: Vec<Control>,
}

impl EncodedStream {
    /// Reconstructs the difference value of every source element (zero for
    /// skipped ones) — the inverse of [`EncodingUnit::encode`].
    pub fn decode(&self, len: usize) -> Vec<i16> {
        let mut out = vec![0i16; len];
        for e in &self.entries {
            let contribution = if e.shift { (e.nibble as i16) << 4 } else { e.nibble as i16 };
            out[e.index] += contribution;
        }
        out
    }

    /// Number of multiplier-lane slots this stream occupies (the Compute
    /// Unit's issue cost, before dividing by lane count).
    pub fn lane_slots(&self) -> usize {
        self.entries.len()
    }
}

/// The Encoding Unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodingUnit;

impl EncodingUnit {
    /// Creates an Encoding Unit.
    pub fn new() -> Self {
        EncodingUnit
    }

    /// Splits a difference into little-endian signed-nibble parts such that
    /// `sum(part_i << (4*i)) == d`, each part in `-8..=7`.
    fn nibbles(mut d: i16) -> Vec<i8> {
        let mut parts = Vec::new();
        while d != 0 {
            // Signed remainder in -8..=7 with carry propagation.
            let mut low = (d % 16) as i8;
            if low > 7 {
                low -= 16;
            } else if low < -8 {
                low += 16;
            }
            parts.push(low);
            d = (d - low as i16) >> 4;
        }
        parts
    }

    /// Encodes the differences between the current and previous activation
    /// streams (both on the same quantization grid, §IV-A).
    ///
    /// # Panics
    ///
    /// Panics if stream lengths differ.
    pub fn encode(&self, current: &[i8], previous: &[i8]) -> EncodedStream {
        assert_eq!(current.len(), previous.len(), "streams must align");
        let mut stream = EncodedStream::default();
        for (i, (&c, &p)) in current.iter().zip(previous).enumerate() {
            let d = c as i16 - p as i16;
            let parts = Self::nibbles(d);
            let control = match parts.len() {
                0 => Control::ZeroSkip,
                1 => Control::EnqueueLow,
                _ => Control::EnqueueBoth,
            };
            stream.controls.push(control);
            for (pi, &nib) in parts.iter().enumerate() {
                // A difference of two i8 values fits in 9 bits → at most
                // three nibble parts. Parts 0/1 map onto the paired
                // multipliers (low / shifted-high). A third part (9-bit
                // outlier) exceeds the single-shifter datapath, so it
                // issues extra shifted passes whose nibbles sum to
                // `nib << 4` (then shifted once more by the lane shifter) —
                // exactly the "two sequential 8-bit operations" cost the
                // timing model charges for over-8-bit differences.
                if pi < 2 {
                    stream.entries.push(LaneEntry { nibble: nib, shift: pi == 1, index: i });
                } else {
                    let mut remaining = (nib as i16) << 4; // decoded << 4 again below
                    while remaining != 0 {
                        let step = remaining.clamp(-8, 7);
                        stream.entries.push(LaneEntry {
                            nibble: step as i8,
                            shift: true,
                            index: i,
                        });
                        // Each emitted entry decodes as `step << 4`; we owe
                        // `nib << 8` total, i.e. `(nib << 4)` worth of
                        // shifted nibbles — but nibbles saturate at ±8, so
                        // walk the residue down.
                        remaining -= step;
                    }
                }
            }
        }
        stream
    }

    /// Encoding latency in cycles: subtraction+comparison fuse into one
    /// cycle and queuing into another (§V-B), pipelined at `width` elements
    /// per cycle.
    pub fn cycles(&self, elems: usize, width: usize) -> usize {
        elems.div_ceil(width.max(1)) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;

    fn roundtrip(current: &[i8], previous: &[i8]) {
        let enc = EncodingUnit::new().encode(current, previous);
        let decoded = enc.decode(current.len());
        let expect: Vec<i16> =
            current.iter().zip(previous).map(|(&c, &p)| c as i16 - p as i16).collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn zero_differences_are_skipped() {
        let a = [5i8, -3, 0, 127];
        let enc = EncodingUnit::new().encode(&a, &a);
        assert!(enc.entries.is_empty());
        assert!(enc.controls.iter().all(|&c| c == Control::ZeroSkip));
        assert_eq!(enc.decode(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn low4_values_use_one_lane() {
        let cur = [10i8, 3];
        let prev = [3i8, 10];
        let enc = EncodingUnit::new().encode(&cur, &prev);
        assert_eq!(enc.controls, vec![Control::EnqueueLow, Control::EnqueueLow]);
        assert_eq!(enc.lane_slots(), 2);
        roundtrip(&cur, &prev);
    }

    #[test]
    fn full8_values_use_two_lanes_with_shift() {
        let cur = [100i8];
        let prev = [0i8];
        let enc = EncodingUnit::new().encode(&cur, &prev);
        assert_eq!(enc.controls, vec![Control::EnqueueBoth]);
        assert_eq!(enc.lane_slots(), 2);
        assert!(enc.entries.iter().any(|e| e.shift));
        assert!(enc.entries.iter().any(|e| !e.shift));
        roundtrip(&cur, &prev);
    }

    #[test]
    fn over8_differences_still_decode_exactly() {
        // 127 − (−127) = 254 needs 9 bits.
        let cur = [127i8];
        let prev = [-127i8];
        roundtrip(&cur, &prev);
        let enc = EncodingUnit::new().encode(&cur, &prev);
        assert!(enc.lane_slots() >= 3, "over-8-bit values cost extra passes");
    }

    #[test]
    fn random_streams_roundtrip() {
        let mut rng = Rng::seed_from(42);
        for _ in 0..50 {
            let n = 1 + rng.next_below(64);
            let cur: Vec<i8> = (0..n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
            let prev: Vec<i8> = (0..n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
            roundtrip(&cur, &prev);
        }
    }

    #[test]
    fn nibble_split_is_exact_for_all_i16_in_range() {
        for d in -254i16..=254 {
            let parts = EncodingUnit::nibbles(d);
            let sum: i16 = parts.iter().enumerate().map(|(i, &p)| (p as i16) << (4 * i)).sum();
            assert_eq!(sum, d, "nibble split of {d}");
            assert!(parts.iter().all(|&p| (-8..=7).contains(&p)));
        }
    }

    #[test]
    fn cycle_model_pipelines() {
        let eu = EncodingUnit::new();
        assert_eq!(eu.cycles(0, 16), 1);
        assert_eq!(eu.cycles(16, 16), 2);
        assert_eq!(eu.cycles(17, 16), 3);
    }
}
