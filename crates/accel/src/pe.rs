//! Behavioral model of the Compute Unit's processing element (§V-B,
//! Fig. 12).
//!
//! Each PE holds **four 4-bit×8-bit multipliers** feeding an adder tree,
//! with a shifter on the first adder stage **per multiplier pair** (the
//! Encoding Unit reorders nibbles so every shifted operand lands on a
//! shifter-equipped lane), and a partial-sum register — high and low parts
//! of an 8-bit value need not meet in the same adder-tree pass because
//! accumulation order is free (§V-B).
//!
//! [`ComputeUnit::matvec_delta`] drives an encoded difference stream
//! through PEs against a weight column and must reproduce the reference
//! integer kernels bit-exactly — the datapath-level proof of the Fig. 7
//! numerical-equivalence claim, asserted in the tests.

use crate::encoder::{EncodingUnit, LaneEntry};

/// Lane width of one PE (four multipliers, Fig. 12).
pub const LANES_PER_PE: usize = 4;

/// One adder-tree processing element with a partial-sum register.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    partial_sum: i32,
    issued_groups: u64,
}

impl Pe {
    /// A fresh PE with a cleared partial-sum register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues one group of up to four lane entries paired with their
    /// weights; products are shifted per metadata and accumulated through
    /// the adder tree into the partial-sum register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES_PER_PE`] entries are issued at once.
    pub fn issue(&mut self, group: &[(LaneEntry, i8)]) {
        assert!(group.len() <= LANES_PER_PE, "a PE has four multipliers");
        let mut tree = 0i32;
        for (entry, weight) in group {
            // 4-bit × 8-bit multiplier.
            let product = entry.nibble as i32 * *weight as i32;
            // First adder stage applies the shift for high nibbles.
            tree += if entry.shift { product << 4 } else { product };
        }
        self.partial_sum += tree;
        self.issued_groups += 1;
    }

    /// Reads and clears the partial-sum register.
    pub fn drain(&mut self) -> i32 {
        std::mem::take(&mut self.partial_sum)
    }

    /// Number of issue cycles consumed so far.
    pub fn issue_cycles(&self) -> u64 {
        self.issued_groups
    }
}

/// A bank of PEs executing an encoded delta stream against weights — the
/// Compute Unit datapath for one output feature.
#[derive(Debug, Clone, Default)]
pub struct ComputeUnit {
    pe: Pe,
}

impl ComputeUnit {
    /// A compute unit with one (behavioral) PE.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `prev_out + Δx · w` for one output feature: encodes the
    /// temporal difference of the activation stream, issues the reordered
    /// lanes in groups of four against the per-element weights, and applies
    /// the stage-3 summation.
    ///
    /// Returns `(output, issue_cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    pub fn matvec_delta(
        &mut self,
        prev_out: i32,
        current: &[i8],
        previous: &[i8],
        weights: &[i8],
    ) -> (i32, u64) {
        assert_eq!(current.len(), weights.len(), "one weight per activation");
        let stream = EncodingUnit::new().encode(current, previous);
        let start = self.pe.issue_cycles();
        for group in stream.entries.chunks(LANES_PER_PE) {
            let paired: Vec<(LaneEntry, i8)> =
                group.iter().map(|&e| (e, weights[e.index])).collect();
            self.pe.issue(&paired);
        }
        let delta_acc = self.pe.drain();
        (prev_out + delta_acc, self.pe.issue_cycles() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::kernels::{int_matmul, widen};
    use tensor::Rng;

    fn rand_i8(n: usize, rng: &mut Rng) -> Vec<i8> {
        (0..n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect()
    }

    #[test]
    fn pe_shifts_high_nibbles() {
        let mut pe = Pe::new();
        // 100 = 6<<4 + 4: issue both nibbles against weight 3.
        pe.issue(&[
            (LaneEntry { nibble: 4, shift: false, index: 0 }, 3),
            (LaneEntry { nibble: 6, shift: true, index: 0 }, 3),
        ]);
        assert_eq!(pe.drain(), 300);
        assert_eq!(pe.issue_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "four multipliers")]
    fn pe_rejects_oversized_groups() {
        let e = LaneEntry { nibble: 1, shift: false, index: 0 };
        Pe::new().issue(&[(e, 1); 5]);
    }

    #[test]
    fn datapath_matches_integer_kernels() {
        // EncodingUnit + PE == the reference delta kernel, bit for bit.
        let mut rng = Rng::seed_from(9);
        for _ in 0..25 {
            let k = 1 + rng.next_below(48);
            let prev = rand_i8(k, &mut rng);
            let cur: Vec<i8> = prev
                .iter()
                .map(|&p| {
                    let delta = rng.next_below(9) as i32 - 4;
                    (p as i32 + delta).clamp(-127, 127) as i8
                })
                .collect();
            let w = rand_i8(k, &mut rng);
            let prev_out = int_matmul(&widen(&prev), &w, 1, k, 1)[0];
            let expect = int_matmul(&widen(&cur), &w, 1, k, 1)[0];
            let (got, _) = ComputeUnit::new().matvec_delta(prev_out, &cur, &prev, &w);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn datapath_handles_full_range_deltas() {
        // Extreme deltas (up to ±254) still compute exactly.
        let prev = vec![-127i8, 127, 0, 64];
        let cur = vec![127i8, -127, -127, -64];
        let w = vec![11i8, -7, 3, 127];
        let prev_out = int_matmul(&widen(&prev), &w, 1, 4, 1)[0];
        let expect = int_matmul(&widen(&cur), &w, 1, 4, 1)[0];
        let (got, cycles) = ComputeUnit::new().matvec_delta(prev_out, &cur, &prev, &w);
        assert_eq!(got, expect);
        assert!(cycles >= 2, "wide deltas need multiple issue groups");
    }

    #[test]
    fn sparse_deltas_cost_fewer_cycles() {
        let mut rng = Rng::seed_from(3);
        let k = 64;
        let base = rand_i8(k, &mut rng);
        let w = rand_i8(k, &mut rng);
        // Dense change on every element vs change on 10% of elements.
        let dense: Vec<i8> = base.iter().map(|&p| p.wrapping_add(3).clamp(-127, 127)).collect();
        let sparse: Vec<i8> = base
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % 10 == 0 { (p as i32 + 3).clamp(-127, 127) as i8 } else { p })
            .collect();
        let prev_out = int_matmul(&widen(&base), &w, 1, k, 1)[0];
        let (_, dense_cycles) = ComputeUnit::new().matvec_delta(prev_out, &dense, &base, &w);
        let (_, sparse_cycles) = ComputeUnit::new().matvec_delta(prev_out, &sparse, &base, &w);
        assert!(
            sparse_cycles * 2 < dense_cycles,
            "zero skipping must pay: {sparse_cycles} vs {dense_cycles}"
        );
    }
}
