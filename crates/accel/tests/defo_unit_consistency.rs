//! Consistency between the analytic simulator's Defo policy and the
//! behavioral Defo Unit: feeding the unit the same per-layer cycle counts
//! the simulator measures must reproduce the simulator's decisions.

use accel::defo_unit::DefoUnit;
use accel::design::Design;
use accel::sim::{simulate, synth};

#[test]
fn defo_unit_reproduces_simulator_decisions() {
    // A trace mixing compute-bound (high reuse) and memory-bound (low
    // reuse) layers so the step-2 decision is non-trivial.
    // Sized so per-layer cycle counts fit the 16-bit table entries
    // (the paper notes 16 bits suffice for its per-layer cycles).
    let mut trace = synth::trace(4, 12, 100_000, 128, false);
    let low = synth::trace(4, 12, 100_000, 4, false);
    for (i, mut layer) in low.layers.into_iter().enumerate() {
        layer.node = 4 + i;
        layer.name = format!("low.{i}");
        trace.layers.push(layer);
    }
    for (row, extra) in trace.steps.iter_mut().zip(low.steps) {
        row.extend(extra);
    }

    let design = Design::ditto();
    let run = simulate(&design, &trace);
    let report = run.defo.expect("defo active");
    assert!(report.changed_ratio > 0.0 && report.changed_ratio < 1.0, "mixed workload");

    // Reconstruct the decision with the behavioral unit from the same
    // per-layer mode costs the simulator computes internally: act cost at
    // step 0, temporal cost at step 1 (we re-derive them through a
    // one-layer simulation of each mode).
    let mut unit = DefoUnit::new();
    let mut unit_decisions = Vec::new();
    for (l, meta) in trace.layers.iter().enumerate() {
        // Single-layer sub-traces isolate per-layer costs exactly.
        let sub = accel::sim::synth::trace(1, 2, meta.elems, meta.reuse, false);
        let mut sub = sub;
        sub.layers[0] = meta.clone();
        sub.steps[0][0] = trace.steps[0][l].clone();
        sub.steps[1][0] = trace.steps[1][l].clone();
        // Simulating the two steps gives act (step 0) + temporal (step 1).
        let two = simulate(&design, &sub);
        // Derive step costs: ITC-free decomposition — run step 0 only.
        let mut only_first = sub.clone();
        only_first.steps.truncate(1);
        let first = simulate(&design, &only_first);
        let act_cycles = first.cycles;
        let diff_cycles = two.cycles - first.cycles;
        unit.record_act(l, act_cycles.round() as u64);
        unit_decisions.push(unit.record_diff_and_decide(l, diff_cycles.round() as u64));
    }
    // High-reuse layers keep differences; low-reuse layers revert — and
    // the behavioral table agrees with the simulator's aggregate ratio.
    let unit_changed =
        unit_decisions.iter().filter(|&&d| !d).count() as f64 / unit_decisions.len() as f64;
    assert!(
        (unit_changed - report.changed_ratio).abs() < 1e-9,
        "behavioral unit {unit_changed} vs simulator {}",
        report.changed_ratio
    );
    for (l, &d) in unit_decisions.iter().enumerate() {
        let expect = trace.layers[l].reuse >= 128;
        assert_eq!(d, expect, "layer {l} ({} reuse)", trace.layers[l].reuse);
    }
}
