//! `grid::run` must be a drop-in parallel replacement for the sequential
//! (design × model) nested loop: same cell order, bit-identical numbers,
//! regardless of worker count.

use accel::design::Design;
use accel::gpu::simulate_gpu;
use accel::grid::{self, SweepSpec};
use accel::sim::simulate;
use diffusion::{DiffusionModel, ModelKind, ModelScale};
use ditto_core::runner::{trace_model, ExecPolicy};
use ditto_core::trace::WorkloadTrace;

/// Tiny-scale traces of all seven Table I models (no disk cache — this is
/// the raw trace pipeline, so the test is hermetic).
fn all_model_traces() -> Vec<WorkloadTrace> {
    ModelKind::all()
        .into_iter()
        .map(|kind| {
            let model = DiffusionModel::build(kind, ModelScale::Tiny, 42);
            trace_model(&model, 0, ExecPolicy::Dense).expect("trace").0
        })
        .collect()
}

#[test]
fn full_grid_is_bit_identical_to_sequential_nested_loop() {
    let designs = Design::catalog();
    assert_eq!(designs.len(), 18, "every public design constructor");
    let traces = all_model_traces();
    let spec = SweepSpec::new(designs.clone(), traces.iter().collect());
    let report = grid::run(&spec).expect("valid sweep");

    assert_eq!(report.cells.len(), 18 * traces.len());
    for (m, trace) in traces.iter().enumerate() {
        assert_eq!(report.models[m], trace.model);
        let gpu = simulate_gpu(trace);
        assert_eq!(report.gpu(m).cycles.to_bits(), gpu.cycles.to_bits());
        for (d, design) in designs.iter().enumerate() {
            let cell = report.cell(d, m);
            let seq = simulate(design, trace);
            assert_eq!(cell.run.design, design.name);
            assert_eq!(cell.run.model, trace.model);
            for (label, a, b) in [
                ("cycles", cell.run.cycles, seq.cycles),
                ("compute", cell.run.compute_cycles, seq.compute_cycles),
                ("stall", cell.run.stall_cycles, seq.stall_cycles),
                ("dram_bytes", cell.run.dram_bytes, seq.dram_bytes),
                ("total_bytes", cell.run.total_bytes, seq.total_bytes),
                ("energy", cell.run.energy.total(), seq.energy.total()),
                ("speedup_vs_gpu", cell.speedup_vs_gpu, gpu.cycles / seq.cycles),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}/{}: {label} differs between grid and sequential ({a} vs {b})",
                    design.name,
                    trace.model
                );
            }
            match (&cell.run.defo, &seq.defo) {
                (None, None) => {}
                (Some(p), Some(s)) => {
                    assert_eq!(p.changed_ratio.to_bits(), s.changed_ratio.to_bits());
                    assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits());
                }
                _ => panic!("{}/{}: Defo presence differs", design.name, trace.model),
            }
        }
    }
}

#[test]
fn grid_is_deterministic_across_kernel_backends() {
    // Tracing one real model under every `DITTO_KERNEL_BACKEND` value and
    // sweeping it must be byte-stable: the kernel backends are
    // bit-identical, so both the trace and every derived cell metric are
    // backend-invariant. (The umbrella `backend_invariance` test covers
    // more models; this one pins the accel-level guarantee.)
    use tensor::backend::{self, KernelBackend};
    let initial = backend::active();
    let designs = vec![Design::itc(), Design::ditto(), Design::diffy()];
    let mut reference: Option<grid::SweepReport> = None;
    for b in KernelBackend::available() {
        backend::set_active(b).unwrap();
        let model = DiffusionModel::build(ModelKind::Ddpm, ModelScale::Tiny, 42);
        let trace = trace_model(&model, 0, ExecPolicy::TemporalDelta).expect("trace").0;
        let report =
            grid::run(&SweepSpec::new(designs.clone(), vec![&trace])).expect("valid sweep");
        match &reference {
            None => reference = Some(report),
            Some(want) => {
                for (a, w) in report.cells.iter().zip(&want.cells) {
                    assert_eq!(
                        a.run.cycles.to_bits(),
                        w.run.cycles.to_bits(),
                        "backend {b}: {} cycles drifted",
                        a.run.design
                    );
                    assert_eq!(a.run.energy.total().to_bits(), w.run.energy.total().to_bits());
                    assert_eq!(a.run.dram_bytes.to_bits(), w.run.dram_bytes.to_bits());
                    assert_eq!(a.speedup_vs_gpu.to_bits(), w.speedup_vs_gpu.to_bits());
                }
                for (a, w) in report.gpu.iter().zip(&want.gpu) {
                    assert_eq!(a.cycles.to_bits(), w.cycles.to_bits());
                }
            }
        }
    }
    backend::set_active(initial).unwrap();
}

#[test]
fn grid_is_deterministic_across_worker_counts() {
    // Synthetic traces keep this fast; the point is scheduling, not models.
    use accel::sim::synth;
    let traces = [synth::trace(5, 9, 150_000, 512, true), synth::trace(3, 7, 80_000, 8, false)];
    let spec = SweepSpec::new(Design::catalog(), traces.iter().collect());
    let reference = grid::run_with_workers(&spec, 1).expect("sequential baseline");
    for workers in [2, 3, 4, 16, 64] {
        let report = grid::run_with_workers(&spec, workers).expect("valid sweep");
        assert_eq!(report.designs, reference.designs);
        assert_eq!(report.models, reference.models);
        for (a, b) in report.cells.iter().zip(&reference.cells) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.model, b.model);
            assert_eq!(
                a.run.cycles.to_bits(),
                b.run.cycles.to_bits(),
                "workers={workers}: {}/{} cycles drifted",
                a.run.design,
                a.run.model
            );
            assert_eq!(a.run.energy.total().to_bits(), b.run.energy.total().to_bits());
            assert_eq!(a.speedup_vs_gpu.to_bits(), b.speedup_vs_gpu.to_bits());
        }
        for (a, b) in report.gpu.iter().zip(&reference.gpu) {
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
        }
    }
}
