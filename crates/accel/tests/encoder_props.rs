//! Property tests of the Encoding Unit / PE datapath: lossless reordering
//! for arbitrary activation pairs and cost consistency with the abstract
//! bit-width classification.

use accel::encoder::{Control, EncodingUnit};
use accel::pe::ComputeUnit;
use proptest::prelude::*;
use quant::kernels::{int_matmul, widen};
use quant::BitWidthClass;

fn i8_no_min(v: i8) -> i8 {
    if v == -128 {
        -127
    } else {
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity on differences for arbitrary
    /// activation streams.
    #[test]
    fn encode_decode_roundtrip(
        cur in proptest::collection::vec(any::<i8>().prop_map(i8_no_min), 0..64),
        prev_seed in any::<u64>(),
    ) {
        let mut rng = tensor::Rng::seed_from(prev_seed);
        let prev: Vec<i8> = cur.iter().map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let enc = EncodingUnit::new().encode(&cur, &prev);
        let decoded = enc.decode(cur.len());
        let expect: Vec<i16> = cur.iter().zip(&prev).map(|(&c, &p)| c as i16 - p as i16).collect();
        prop_assert_eq!(decoded, expect);
        prop_assert_eq!(enc.controls.len(), cur.len());
    }

    /// Control signals agree with the abstract classifier, and lane slots
    /// match its lane cost for non-over-8 values.
    #[test]
    fn controls_match_classifier(
        cur in proptest::collection::vec(any::<i8>().prop_map(i8_no_min), 1..64),
        prev in proptest::collection::vec(any::<i8>().prop_map(i8_no_min), 1..64),
    ) {
        let n = cur.len().min(prev.len());
        let (cur, prev) = (&cur[..n], &prev[..n]);
        let enc = EncodingUnit::new().encode(cur, prev);
        let mut expected_slots = 0u64;
        for (i, (&c, &p)) in cur.iter().zip(prev).enumerate() {
            let d = c as i16 - p as i16;
            match BitWidthClass::of(d) {
                BitWidthClass::Zero => {
                    prop_assert_eq!(enc.controls[i], Control::ZeroSkip);
                    // contributes no slots
                }
                BitWidthClass::Low4 => {
                    prop_assert_eq!(enc.controls[i], Control::EnqueueLow);
                    expected_slots += 1;
                }
                BitWidthClass::Full8 => {
                    prop_assert_eq!(enc.controls[i], Control::EnqueueBoth);
                    expected_slots += 2;
                }
                BitWidthClass::Over8 => {
                    prop_assert_eq!(enc.controls[i], Control::EnqueueBoth);
                    // over-8 costs at least two slots plus extra passes.
                    expected_slots += 2;
                }
            }
        }
        prop_assert!(enc.lane_slots() as u64 >= expected_slots);
    }

    /// The full datapath (encode + PE issue + summation) equals the dense
    /// integer reference for arbitrary streams and weights.
    #[test]
    fn datapath_equals_reference(
        k in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = tensor::Rng::seed_from(seed);
        let prev: Vec<i8> = (0..k).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let cur: Vec<i8> = (0..k).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let w: Vec<i8> = (0..k).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let prev_out = int_matmul(&widen(&prev), &w, 1, k, 1)[0];
        let expect = int_matmul(&widen(&cur), &w, 1, k, 1)[0];
        let (got, cycles) = ComputeUnit::new().matvec_delta(prev_out, &cur, &prev, &w);
        prop_assert_eq!(got, expect);
        // Cycle count is bounded by ceil(slots / 4) of the encoded stream.
        let enc = EncodingUnit::new().encode(&cur, &prev);
        prop_assert_eq!(cycles as usize, enc.lane_slots().div_ceil(4));
    }
}
