//! `simulate_designs` must be a drop-in parallel replacement for a loop of
//! sequential `simulate` calls: same order, bit-identical numbers.

use accel::design::Design;
use accel::sim::{simulate, simulate_designs, synth, RunResult};

/// Every public design constructor: the Fig. 13 comparison set, the
/// Fig. 16 DS/DB ablations, the Fig. 15 cross-application variants, and
/// the ideal / dynamic Defo policies.
fn all_designs() -> Vec<Design> {
    vec![
        Design::itc(),
        Design::diffy(),
        Design::cambricon_d(),
        Design::ditto(),
        Design::ditto_plus(),
        Design::ds(),
        Design::db(),
        Design::db_ds(),
        Design::db_ds_attn(),
        Design::ideal_ditto(),
        Design::ideal_ditto_plus(),
        Design::dynamic_ditto(),
        Design::cambricon_d_original(),
        Design::cambricon_d_attn(),
        Design::cambricon_d_attn_defo(),
        Design::cambricon_d_attn_defo_plus(),
        Design::ditto_sign_mask(),
        Design::ditto_plus_sign_mask(),
    ]
}

/// Asserts f64 equality at the bit level (no tolerance: the parallel path
/// must not reorder any accumulation).
#[track_caller]
fn assert_bits(label: &str, design: &str, a: f64, b: f64) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{design}: {label} differs between parallel and sequential ({a} vs {b})"
    );
}

fn assert_identical(design: &Design, par: &RunResult, seq: &RunResult) {
    assert_eq!(par.design, seq.design);
    assert_eq!(par.design, design.name);
    assert_eq!(par.model, seq.model);
    let d = &design.name;
    assert_bits("cycles", d, par.cycles, seq.cycles);
    assert_bits("compute_cycles", d, par.compute_cycles, seq.compute_cycles);
    assert_bits("stall_cycles", d, par.stall_cycles, seq.stall_cycles);
    assert_bits("dram_bytes", d, par.dram_bytes, seq.dram_bytes);
    assert_bits("total_bytes", d, par.total_bytes, seq.total_bytes);
    for (label, p, s) in [
        ("energy.compute", par.energy.compute, seq.energy.compute),
        ("energy.encoder", par.energy.encoder, seq.energy.encoder),
        ("energy.vpu", par.energy.vpu, seq.energy.vpu),
        ("energy.defo", par.energy.defo, seq.energy.defo),
        ("energy.sram", par.energy.sram, seq.energy.sram),
        ("energy.dram", par.energy.dram, seq.energy.dram),
        ("energy.static", par.energy.static_, seq.energy.static_),
    ] {
        assert_bits(label, d, p, s);
    }
    match (&par.defo, &seq.defo) {
        (None, None) => {}
        (Some(p), Some(s)) => {
            assert_bits("defo.changed_ratio", d, p.changed_ratio, s.changed_ratio);
            assert_bits("defo.accuracy", d, p.accuracy, s.accuracy);
        }
        _ => panic!("{d}: Defo report presence differs between parallel and sequential"),
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let designs = all_designs();
    // Covered and uncovered sign-mask boundaries exercise different DRAM
    // accounting; both reuse regimes exercise both Defo decisions.
    for (covered, reuse) in [(true, 512), (false, 8)] {
        let trace = synth::trace(6, 12, 200_000, reuse, covered);
        let parallel = simulate_designs(&designs, &trace);
        assert_eq!(parallel.len(), designs.len());
        for (design, par) in designs.iter().zip(&parallel) {
            let seq = simulate(design, &trace);
            assert_identical(design, par, &seq);
        }
    }
}

#[test]
fn parallel_sweep_repeated_runs_are_stable() {
    let designs = all_designs();
    let trace = synth::trace(4, 8, 100_000, 128, true);
    let a = simulate_designs(&designs, &trace);
    let b = simulate_designs(&designs, &trace);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cycles.to_bits(), y.cycles.to_bits());
        assert_eq!(x.energy.total().to_bits(), y.energy.total().to_bits());
    }
}

#[test]
fn empty_and_single_design_sweeps() {
    let trace = synth::trace(2, 4, 50_000, 64, true);
    assert!(simulate_designs(&[], &trace).is_empty());
    let one = simulate_designs(&[Design::ditto()], &trace);
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].cycles.to_bits(), simulate(&Design::ditto(), &trace).cycles.to_bits());
}
