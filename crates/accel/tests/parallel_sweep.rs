//! `simulate_designs` must be a drop-in parallel replacement for a loop of
//! sequential `simulate` calls: same order, bit-identical numbers.

use accel::design::Design;
use accel::grid::SweepError;
use accel::sim::{simulate, simulate_designs, synth, RunResult};

/// Every public design constructor (the serve-front-end catalog).
fn all_designs() -> Vec<Design> {
    Design::catalog()
}

/// Asserts f64 equality at the bit level (no tolerance: the parallel path
/// must not reorder any accumulation).
#[track_caller]
fn assert_bits(label: &str, design: &str, a: f64, b: f64) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{design}: {label} differs between parallel and sequential ({a} vs {b})"
    );
}

fn assert_identical(design: &Design, par: &RunResult, seq: &RunResult) {
    assert_eq!(par.design, seq.design);
    assert_eq!(par.design, design.name);
    assert_eq!(par.model, seq.model);
    let d = &design.name;
    assert_bits("cycles", d, par.cycles, seq.cycles);
    assert_bits("compute_cycles", d, par.compute_cycles, seq.compute_cycles);
    assert_bits("stall_cycles", d, par.stall_cycles, seq.stall_cycles);
    assert_bits("dram_bytes", d, par.dram_bytes, seq.dram_bytes);
    assert_bits("total_bytes", d, par.total_bytes, seq.total_bytes);
    for (label, p, s) in [
        ("energy.compute", par.energy.compute, seq.energy.compute),
        ("energy.encoder", par.energy.encoder, seq.energy.encoder),
        ("energy.vpu", par.energy.vpu, seq.energy.vpu),
        ("energy.defo", par.energy.defo, seq.energy.defo),
        ("energy.sram", par.energy.sram, seq.energy.sram),
        ("energy.dram", par.energy.dram, seq.energy.dram),
        ("energy.static", par.energy.static_, seq.energy.static_),
    ] {
        assert_bits(label, d, p, s);
    }
    match (&par.defo, &seq.defo) {
        (None, None) => {}
        (Some(p), Some(s)) => {
            assert_bits("defo.changed_ratio", d, p.changed_ratio, s.changed_ratio);
            assert_bits("defo.accuracy", d, p.accuracy, s.accuracy);
        }
        _ => panic!("{d}: Defo report presence differs between parallel and sequential"),
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let designs = all_designs();
    // Covered and uncovered sign-mask boundaries exercise different DRAM
    // accounting; both reuse regimes exercise both Defo decisions.
    for (covered, reuse) in [(true, 512), (false, 8)] {
        let trace = synth::trace(6, 12, 200_000, reuse, covered);
        let parallel = simulate_designs(&designs, &trace).unwrap();
        assert_eq!(parallel.len(), designs.len());
        for (design, par) in designs.iter().zip(&parallel) {
            let seq = simulate(design, &trace);
            assert_identical(design, par, &seq);
        }
    }
}

#[test]
fn parallel_sweep_repeated_runs_are_stable() {
    let designs = all_designs();
    let trace = synth::trace(4, 8, 100_000, 128, true);
    let a = simulate_designs(&designs, &trace).unwrap();
    let b = simulate_designs(&designs, &trace).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cycles.to_bits(), y.cycles.to_bits());
        assert_eq!(x.energy.total().to_bits(), y.energy.total().to_bits());
    }
}

#[test]
fn empty_and_single_design_sweeps() {
    let trace = synth::trace(2, 4, 50_000, 64, true);
    // An empty design list is an error, not a silent empty result.
    assert_eq!(simulate_designs(&[], &trace).unwrap_err(), SweepError::EmptyDesigns);
    let one = simulate_designs(&[Design::ditto()], &trace).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].cycles.to_bits(), simulate(&Design::ditto(), &trace).cycles.to_bits());
}

#[test]
fn degenerate_traces_are_errors_not_nans() {
    let mut no_steps = synth::trace(2, 4, 50_000, 64, true);
    no_steps.steps.clear();
    assert_eq!(
        simulate_designs(&[Design::itc()], &no_steps).unwrap_err(),
        SweepError::EmptyTrace { model: "SYNTH".into() }
    );
    let mut ragged = synth::trace(3, 4, 50_000, 64, true);
    ragged.steps[2].truncate(1);
    assert_eq!(
        simulate_designs(&[Design::itc()], &ragged).unwrap_err(),
        SweepError::MismatchedTrace { model: "SYNTH".into(), step: 2, expected: 3, actual: 1 }
    );
}
