//! Property tests of the cycle simulator on randomized synthetic
//! workloads: ordering invariants between designs and policies,
//! monotonicity in sparsity, and accounting sanity.

use accel::design::Design;
use accel::sim::{simulate, synth};
use ditto_core::trace::{StepStats, WorkloadTrace};
use proptest::prelude::*;
use quant::BitWidthHistogram;

/// Random but well-formed synthetic trace.
fn arb_trace() -> impl Strategy<Value = WorkloadTrace> {
    (
        1usize..6,                                               // layers
        3usize..12,                                              // steps
        1_000u64..200_000,                                       // elems
        prop_oneof![Just(8u64), Just(32), Just(128), Just(512)], // reuse
        any::<bool>(),                                           // sign-mask-covered boundaries
        0.0f64..0.9,                                             // zero fraction
        0.0f64..0.5, // low4 fraction (clamped against zero)
    )
        .prop_map(|(layers, steps, elems, reuse, covered, zero, low4)| {
            let low4 = low4.min(0.95 - zero);
            let full8 = (1.0 - zero - low4).max(0.0) * 0.9;
            let mut t = synth::trace(layers, steps, elems, reuse, covered);
            for row in t.steps.iter_mut() {
                for st in row.iter_mut() {
                    st.act = synth::hist(elems, 0.1, 0.3, 0.6);
                    st.spa = synth::hist(elems, 0.15, 0.4, 0.4);
                    if st.temporal.is_some() {
                        st.temporal = Some(vec![synth::hist(elems, zero, low4, full8)]);
                    }
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle policy lower-bounds every realizable Defo policy.
    #[test]
    fn ideal_is_a_lower_bound(trace in arb_trace()) {
        let ideal = simulate(&Design::ideal_ditto(), &trace).cycles;
        for d in [Design::ditto(), Design::dynamic_ditto()] {
            let c = simulate(&d, &trace).cycles;
            prop_assert!(ideal <= c * (1.0 + 1e-9), "{}: {ideal} vs {c}", d.name);
        }
    }

    /// Results are deterministic.
    #[test]
    fn simulation_is_deterministic(trace in arb_trace()) {
        let a = simulate(&Design::ditto(), &trace);
        let b = simulate(&Design::ditto(), &trace);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.energy.total(), b.energy.total());
    }

    /// ITC is insensitive to difference statistics (it never looks at
    /// them): scrambling histograms leaves its cycle count unchanged.
    #[test]
    fn itc_ignores_difference_stats(trace in arb_trace()) {
        let base = simulate(&Design::itc(), &trace).cycles;
        let mut scrambled = trace.clone();
        for row in scrambled.steps.iter_mut() {
            for st in row.iter_mut() {
                let n = st.act.total();
                st.act = BitWidthHistogram { zero: n, ..Default::default() };
                if let Some(h) = st.temporal.as_mut() {
                    for hh in h.iter_mut() {
                        *hh = BitWidthHistogram { zero: hh.total(), ..Default::default() };
                    }
                }
            }
        }
        prop_assert_eq!(base, simulate(&Design::itc(), &scrambled).cycles);
    }

    /// More zero deltas never increase the Ditto hardware's compute
    /// cycles (zero skipping is monotone).
    #[test]
    fn zero_skip_is_monotone(trace in arb_trace()) {
        let base = simulate(&Design::ideal_ditto(), &trace);
        let mut sparser = trace.clone();
        for row in sparser.steps.iter_mut() {
            for st in row.iter_mut() {
                if let Some(hists) = st.temporal.as_mut() {
                    for h in hists.iter_mut() {
                        // Move all full8 mass to zero.
                        *h = BitWidthHistogram {
                            zero: h.zero + h.full8,
                            low4: h.low4,
                            full8: 0,
                            over8: h.over8,
                        };
                    }
                }
            }
        }
        let better = simulate(&Design::ideal_ditto(), &sparser);
        prop_assert!(better.compute_cycles <= base.compute_cycles * (1.0 + 1e-9));
        prop_assert!(better.cycles <= base.cycles * (1.0 + 1e-9));
    }

    /// Accounting sanity for every design: non-negative components that
    /// add up.
    #[test]
    fn accounting_is_consistent(trace in arb_trace()) {
        for d in [
            Design::itc(),
            Design::diffy(),
            Design::cambricon_d(),
            Design::ditto(),
            Design::ditto_plus(),
            Design::ds(),
            Design::db(),
        ] {
            let r = simulate(&d, &trace);
            prop_assert!(r.compute_cycles > 0.0, "{}", d.name);
            prop_assert!(r.stall_cycles >= 0.0);
            prop_assert!((r.cycles - r.compute_cycles - r.stall_cycles).abs() < 1e-6 * r.cycles);
            prop_assert!(r.dram_bytes >= 0.0);
            prop_assert!(r.total_bytes >= r.dram_bytes * 0.0);
            let e = r.energy;
            for v in [e.compute, e.encoder, e.vpu, e.defo, e.sram, e.dram, e.static_] {
                prop_assert!(v >= 0.0);
            }
        }
    }

    /// Sign-mask can only reduce Cambricon-D's traffic and never below the
    /// spill floor.
    #[test]
    fn sign_mask_reduces_traffic(trace in arb_trace()) {
        let with_mask = simulate(&Design::cambricon_d(), &trace);
        let mut no_mask = Design::cambricon_d();
        no_mask.sign_mask = false;
        let without = simulate(&no_mask, &trace);
        prop_assert!(with_mask.dram_bytes <= without.dram_bytes * (1.0 + 1e-9));
    }

    /// Drift injection preserves element counts for any parameters.
    #[test]
    fn drift_preserves_element_counts(trace in arb_trace(), amp in 0.0f64..1.0, period in 1usize..16) {
        let drifted = accel::drift::inject_drift(&trace, amp, period);
        let a = trace.merged(ditto_core::trace::StatView::Temporal);
        let b = drifted.merged(ditto_core::trace::StatView::Temporal);
        prop_assert_eq!(a.total(), b.total());
    }
}

/// Non-random regression: a trace whose stats make every layer
/// memory-bound must drive Defo's changed ratio to 1.
#[test]
fn fully_memory_bound_trace_changes_everything() {
    let t = synth::trace(3, 8, 10_000, 1, false);
    let r = simulate(&Design::ditto(), &t);
    assert_eq!(r.defo.unwrap().changed_ratio, 1.0);
}

/// StepStats default sanity used by the strategies above.
#[test]
fn default_stats_are_empty() {
    let st = StepStats::default();
    assert_eq!(st.act.total(), 0);
    assert!(st.temporal.is_none());
}
