//! Exact integer kernels with `i32` accumulation.
//!
//! These kernels are the ground truth for the Ditto algorithm's numerical
//! equivalence claim: difference processing must produce *bit-identical*
//! accumulator values to dense integer execution (§IV-A, Fig. 7). The
//! activation operand is taken in the `i16` difference domain so the same
//! kernel serves dense (`i8` widened) and delta execution.
//!
//! Every public kernel is a thin dispatcher over the pluggable
//! [`tensor::backend`] layer ([`tensor::KernelBackend`]):
//!
//! * **Scalar** runs the pre-tiling loops kept verbatim in [`reference`];
//! * **Tiled** (the default without SIMD) register-tiles [`MR`]
//!   activation rows so each streamed weight row is reused from L1 while
//!   the `i32` accumulator rows stay cache-resident across the depth
//!   loop;
//! * **Simd** runs explicit AVX2/SSE2 intrinsics ([`simd`]) that fold two
//!   non-zero activation rows per `vpmaddwd` pass.
//!
//! All three are **bit-identical**: `i32` addition is associative
//! (wrapping), so any accumulation order reproduces the scalar sums
//! exactly, and the per-row zero-skip fast path of delta execution is
//! preserved everywhere. The equivalence is asserted in tests, the
//! cross-backend property matrix (`tests/props.rs`), and bench setup.
//! Pin a backend explicitly with the `*_with` variants.

pub mod simd;

use tensor::backend::{self, KernelBackend};
use tensor::ops::Conv2dParams;

/// Activation rows processed together by the tiled kernels. Each `B`/weight
/// row streamed from memory is reused `MR` times, and the `MR` live `i32`
/// output rows stay in L1 across the whole depth loop.
const MR: usize = 4;

/// Weight element count below which the row-blocked tiling is skipped: a
/// `B` that small stays cache-resident across the plain streaming loop, so
/// blocking only adds overhead. Either order is bit-identical (`i32`
/// wrapping addition is associative), so this is purely a perf dispatch.
const B_ELEMS_BLOCK_THRESHOLD: usize = 1 << 14;

/// Dispatches one accumulation pass to the chosen backend: `out [m,n] +=
/// a [m,k] × b [k,n]` with zero activations skipped on every path.
fn accumulate_i8(
    backend: KernelBackend,
    out: &mut [i32],
    a: &[i16],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
) {
    match backend {
        KernelBackend::Scalar => accumulate_scalar(out, a, b, m, k, n),
        KernelBackend::Tiled => accumulate_tiled(out, a, b, m, k, n),
        KernelBackend::Simd => simd::accumulate_i8(out, a, b, m, k, n),
    }
}

/// [`accumulate_i8`] for `i16` weight operands (attention scores).
fn accumulate_i16(
    backend: KernelBackend,
    out: &mut [i32],
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
) {
    match backend {
        KernelBackend::Scalar => accumulate_scalar(out, a, b, m, k, n),
        KernelBackend::Tiled => accumulate_tiled(out, a, b, m, k, n),
        KernelBackend::Simd => simd::accumulate_i16(out, a, b, m, k, n),
    }
}

/// The scalar-backend accumulation: the original streaming `ikj` loop
/// (the same order [`reference`] keeps for the public reference kernels).
fn accumulate_scalar<W: Copy + Into<i32>>(
    out: &mut [i32],
    a: &[i16],
    b: &[W],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j].into();
            }
        }
    }
}

/// Accumulates `a [m,k] × b [k,n]` on top of `out [m,n]` with `i32`
/// accumulation, register-tiled over [`MR`] rows, skipping zero activation
/// values (the delta fast path).
///
/// Generic over the weight element (`i8` dense weights, `i16` attention
/// operands) so both monomorphize to the same tiled loop nest.
pub(crate) fn accumulate_tiled<W: Copy + Into<i32>>(
    out: &mut [i32],
    a: &[i16],
    b: &[W],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if k * n <= B_ELEMS_BLOCK_THRESHOLD || m < 2 {
        // Small B: the streaming `ikj` order wins (see threshold doc).
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk] as i32;
                if av == 0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += av * brow[j].into();
                }
            }
        }
        return;
    }
    for ib in (0..m).step_by(MR) {
        let ie = (ib + MR).min(m);
        for kk in 0..k {
            let brow = &b[kk * n..kk * n + n];
            for i in ib..ie {
                let av = a[i * k + kk] as i32;
                if av == 0 {
                    continue;
                }
                let orow = &mut out[i * n..i * n + n];
                for j in 0..n {
                    orow[j] += av * brow[j].into();
                }
            }
        }
    }
}

/// Dense integer matmul: `a [m,k] (i16 domain) × w [k,n] (i8) → i32 [m,n]`
/// on the process-wide active backend.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn int_matmul(a: &[i16], w: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    int_matmul_with(backend::active(), a, w, m, k, n)
}

/// [`int_matmul`] on an explicit backend (bit-identical for every
/// backend).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn int_matmul_with(
    backend: KernelBackend,
    a: &[i16],
    w: &[i8],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "activation length");
    assert_eq!(w.len(), k * n, "weight length");
    backend::count_dispatch(backend::DispatchKernel::IntMatmul, backend);
    let mut out = vec![0i32; m * n];
    accumulate_i8(backend, &mut out, a, w, m, k, n);
    out
}

/// Widens `i8` activations into the `i16` domain for [`int_matmul`].
pub fn widen(acts: &[i8]) -> Vec<i16> {
    acts.iter().map(|&a| a as i16).collect()
}

/// Direct (lowering-free) integer convolution on the process-wide active
/// backend: `a [c_in,h,w] (i16 domain) × w [c_out,c_in,k,k] (i8) → i32
/// [c_out,ho,wo]` — the integer sibling of `tensor::ops`'
/// `conv2d_direct_into_with`, with no im2col gather and no scratch.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn int_conv2d_direct(
    a: &[i16],
    w: &[i8],
    c_in: usize,
    h: usize,
    width: usize,
    c_out: usize,
    params: Conv2dParams,
) -> Vec<i32> {
    int_conv2d_direct_with(backend::active(), a, w, c_in, h, width, c_out, params)
}

/// [`int_conv2d_direct`] on an explicit backend (bit-identical for every
/// backend — `i32` wrapping addition is associative, so the SIMD path's
/// tap-major accumulation order reproduces the elementwise reference
/// exactly).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn int_conv2d_direct_with(
    backend: KernelBackend,
    a: &[i16],
    w: &[i8],
    c_in: usize,
    h: usize,
    width: usize,
    c_out: usize,
    params: Conv2dParams,
) -> Vec<i32> {
    assert_eq!(a.len(), c_in * h * width, "activation length");
    assert_eq!(w.len(), c_out * c_in * params.kernel * params.kernel, "weight length");
    backend::count_dispatch(backend::DispatchKernel::IntConv2dDirect, backend);
    let ho = params.out_extent(h);
    let wo = params.out_extent(width);
    let mut out = vec![0i32; c_out * ho * wo];
    match backend {
        KernelBackend::Scalar => {
            reference::int_conv2d_direct_into(&mut out, a, w, c_in, h, width, c_out, params)
        }
        // Tiled keeps the tap-major row loop but a portable scalar AXPY;
        // Simd streams each stride-1 row span through the active level's
        // `acc_row_i16` kernel. Both reassociate freely — exact for i32.
        KernelBackend::Tiled => {
            int_conv_taps(&mut out, a, w, c_in, h, width, c_out, params, |o, wv, arow| {
                for (oj, &aj) in o.iter_mut().zip(arow) {
                    *oj += wv * aj as i32;
                }
            });
        }
        KernelBackend::Simd => {
            int_conv_taps(&mut out, a, w, c_in, h, width, c_out, params, simd::conv_axpy_i16);
        }
    }
    out
}

/// Tap-major direct-conv driver shared by the tiled and SIMD backends:
/// for every `(c_out, c_in, ky, kx)` weight tap the valid output-row span
/// accumulates the shifted activation row through `axpy` (stride 1) or a
/// scalar gather (stride > 1). Zero weight taps are skipped — exact for
/// integers, where adding a zero product changes nothing.
#[allow(clippy::too_many_arguments)]
fn int_conv_taps(
    out: &mut [i32],
    a: &[i16],
    w: &[i8],
    c_in: usize,
    h: usize,
    width: usize,
    c_out: usize,
    params: Conv2dParams,
    axpy: impl Fn(&mut [i32], i32, &[i16]),
) {
    let ho = params.out_extent(h);
    let wo = params.out_extent(width);
    let k = params.kernel;
    let pad = params.padding as isize;
    for oc in 0..c_out {
        let oplane = &mut out[oc * ho * wo..(oc + 1) * ho * wo];
        for ic in 0..c_in {
            let plane = &a[ic * h * width..(ic + 1) * h * width];
            for ky in 0..k {
                for kx in 0..k {
                    let wval = w[((oc * c_in + ic) * k + ky) * k + kx] as i32;
                    if wval == 0 {
                        continue;
                    }
                    for oy in 0..ho {
                        let iy = (oy * params.stride + ky) as isize - pad;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let src = &plane[iy as usize * width..(iy as usize + 1) * width];
                        let dst = &mut oplane[oy * wo..(oy + 1) * wo];
                        if params.stride == 1 {
                            // ix = ox + kx - pad must land in [0, width).
                            let shift = kx as isize - pad;
                            let lo = (-shift).clamp(0, wo as isize) as usize;
                            let hi =
                                (width as isize - shift).clamp(lo as isize, wo as isize) as usize;
                            if lo == hi {
                                continue;
                            }
                            let x0 = (lo as isize + shift) as usize;
                            axpy(&mut dst[lo..hi], wval, &src[x0..x0 + (hi - lo)]);
                        } else {
                            for (ox, oj) in dst.iter_mut().enumerate() {
                                let ix = (ox * params.stride) as isize + kx as isize - pad;
                                if ix >= 0 && (ix as usize) < width {
                                    *oj += wval * src[ix as usize] as i32;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Delta-processing matmul: given the previous step's output accumulators
/// and the temporal delta of the inputs, reconstructs the current output as
/// `prev_out + delta × w` (stage 2 + stage 3 of the Ditto algorithm).
///
/// The delta product accumulates directly into a clone of `prev_out` —
/// summation (stage 3) is fused into the sparse matmul (stage 2), saving
/// the O(m·n) intermediate the two-pass formulation would materialize.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn delta_matmul_update(
    prev_out: &[i32],
    delta: &[i16],
    w: &[i8],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    delta_matmul_update_with(backend::active(), prev_out, delta, w, m, k, n)
}

/// [`delta_matmul_update`] on an explicit backend (bit-identical for
/// every backend).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn delta_matmul_update_with(
    backend: KernelBackend,
    prev_out: &[i32],
    delta: &[i16],
    w: &[i8],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    assert_eq!(prev_out.len(), m * n, "previous output length");
    assert_eq!(delta.len(), m * k, "delta length");
    assert_eq!(w.len(), k * n, "weight length");
    backend::count_dispatch(backend::DispatchKernel::DeltaMatmulUpdate, backend);
    let mut out = prev_out.to_vec();
    accumulate_i8(backend, &mut out, delta, w, m, k, n);
    out
}

/// Exact attention-score decomposition (§IV-A, attention layers):
///
/// `Q_t · K_tᵀ == Q_{t+1} · K_{t+1}ᵀ + Q_t · ΔKᵀ + ΔQ · K_{t+1}ᵀ`
///
/// where `ΔQ = Q_t − Q_{t+1}` and `ΔK = K_t − K_{t+1}`. Computes the right-
/// hand side from the previous score matrix and the deltas; `q_t` and
/// `k_prev` play the "treated as weight" role the paper describes.
///
/// All operands are in the quantized integer domain; `q_t`/`dq` are `i16`
/// (differences can exceed i8), `k`s are given as `i16` too for uniformity.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn attention_delta_scores(
    prev_scores: &[i32], // [m, n] = Q_{t+1} K_{t+1}^T
    q_t: &[i16],         // [m, d]
    dq: &[i16],          // [m, d]
    k_prev_t: &[i16],    // [d, n] = K_{t+1}^T (transposed)
    dk_t: &[i16],        // [d, n] = ΔK^T (transposed)
    m: usize,
    d: usize,
    n: usize,
) -> Vec<i32> {
    attention_delta_scores_with(backend::active(), prev_scores, q_t, dq, k_prev_t, dk_t, m, d, n)
}

/// [`attention_delta_scores`] on an explicit backend (bit-identical for
/// every backend).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn attention_delta_scores_with(
    backend: KernelBackend,
    prev_scores: &[i32],
    q_t: &[i16],
    dq: &[i16],
    k_prev_t: &[i16],
    dk_t: &[i16],
    m: usize,
    d: usize,
    n: usize,
) -> Vec<i32> {
    assert_eq!(prev_scores.len(), m * n);
    assert_eq!(q_t.len(), m * d);
    assert_eq!(dq.len(), m * d);
    assert_eq!(k_prev_t.len(), d * n);
    assert_eq!(dk_t.len(), d * n);
    backend::count_dispatch(backend::DispatchKernel::AttentionDeltaScores, backend);
    let mut out = prev_scores.to_vec();
    // Q_t · ΔK^T
    accumulate_i16(backend, &mut out, q_t, dk_t, m, d, n);
    // ΔQ · K_{t+1}^T
    accumulate_i16(backend, &mut out, dq, k_prev_t, m, d, n);
    out
}

/// Reference dense score computation `Q · Kᵀ` in the integer domain.
pub fn int_scores(q: &[i16], k_t: &[i16], m: usize, d: usize, n: usize) -> Vec<i32> {
    int_scores_with(backend::active(), q, k_t, m, d, n)
}

/// [`int_scores`] on an explicit backend (bit-identical for every
/// backend).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn int_scores_with(
    backend: KernelBackend,
    q: &[i16],
    k_t: &[i16],
    m: usize,
    d: usize,
    n: usize,
) -> Vec<i32> {
    assert_eq!(q.len(), m * d);
    assert_eq!(k_t.len(), d * n);
    backend::count_dispatch(backend::DispatchKernel::IntScores, backend);
    let mut out = vec![0i32; m * n];
    accumulate_i16(backend, &mut out, q, k_t, m, d, n);
    out
}

/// The pre-tiling scalar kernels — the bit-identity ground truth for
/// tests and the backend benchmark comparisons. The load-bearing `ikj`
/// zero-skip loop itself lives in one place (the parent module's
/// `accumulate_scalar`, which is also exactly what the `Scalar` backend
/// dispatches to), so the reference and the scalar backend can never
/// drift apart.
pub mod reference {
    /// Scalar dense integer matmul (the original `ikj` loop).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths are inconsistent with the given dimensions.
    pub fn int_matmul(a: &[i16], w: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        assert_eq!(a.len(), m * k, "activation length");
        assert_eq!(w.len(), k * n, "weight length");
        let mut out = vec![0i32; m * n];
        super::accumulate_scalar(&mut out, a, w, m, k, n);
        out
    }

    /// Scalar delta update: separate delta matmul, then an O(m·n) zip-add
    /// (the allocation the fused kernel avoids).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions.
    pub fn delta_matmul_update(
        prev_out: &[i32],
        delta: &[i16],
        w: &[i8],
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<i32> {
        assert_eq!(prev_out.len(), m * n, "previous output length");
        let delta_out = int_matmul(delta, w, m, k, n);
        prev_out.iter().zip(&delta_out).map(|(&p, &d)| p + d).collect()
    }

    /// Scalar `i16 × i16 → i32` accumulation (the original attention inner
    /// loop).
    pub fn accumulate_i16_matmul(
        out: &mut [i32],
        a: &[i16],
        b: &[i16],
        m: usize,
        k: usize,
        n: usize,
    ) {
        super::accumulate_scalar(out, a, b, m, k, n);
    }

    /// Scalar direct integer convolution: the elementwise sliding-window
    /// loop, one output element at a time. Ground truth for
    /// [`super::int_conv2d_direct`]'s tap-major backends.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths are inconsistent with the given dimensions.
    pub fn int_conv2d_direct(
        a: &[i16],
        w: &[i8],
        c_in: usize,
        h: usize,
        width: usize,
        c_out: usize,
        params: super::Conv2dParams,
    ) -> Vec<i32> {
        assert_eq!(a.len(), c_in * h * width, "activation length");
        assert_eq!(w.len(), c_out * c_in * params.kernel * params.kernel, "weight length");
        let ho = params.out_extent(h);
        let wo = params.out_extent(width);
        let mut out = vec![0i32; c_out * ho * wo];
        int_conv2d_direct_into(&mut out, a, w, c_in, h, width, c_out, params);
        out
    }

    /// Slice core of [`int_conv2d_direct`] (also the `Scalar` backend of
    /// the public dispatcher, so reference and backend can never drift).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn int_conv2d_direct_into(
        out: &mut [i32],
        a: &[i16],
        w: &[i8],
        c_in: usize,
        h: usize,
        width: usize,
        c_out: usize,
        params: super::Conv2dParams,
    ) {
        let ho = params.out_extent(h);
        let wo = params.out_extent(width);
        let k = params.kernel;
        let pad = params.padding as isize;
        for oc in 0..c_out {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0i32;
                    for ic in 0..c_in {
                        for ky in 0..k {
                            let iy = (oy * params.stride + ky) as isize - pad;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * params.stride + kx) as isize - pad;
                                if ix < 0 || ix as usize >= width {
                                    continue;
                                }
                                let av = a[(ic * h + iy as usize) * width + ix as usize] as i32;
                                let wv = w[((oc * c_in + ic) * k + ky) * k + kx] as i32;
                                acc += av * wv;
                            }
                        }
                    }
                    out[(oc * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;

    fn rand_i8(n: usize, rng: &mut Rng) -> Vec<i8> {
        (0..n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect()
    }

    fn rand_i16(n: usize, rng: &mut Rng) -> Vec<i16> {
        (0..n).map(|_| rng.next_below(511) as i16 - 255).collect()
    }

    #[test]
    fn int_matmul_known() {
        // [1 2; 3 4] × [1 0; 0 1] = same.
        let a = vec![1i16, 2, 3, 4];
        let w = vec![1i8, 0, 0, 1];
        assert_eq!(int_matmul(&a, &w, 2, 2, 2), vec![1, 2, 3, 4]);
    }

    /// Every backend of the direct integer convolution reproduces the
    /// elementwise sliding-window reference bit for bit, across shape
    /// classes (1×1 pointwise, 3×3 same/strided), stride 1/2, padding 0/1,
    /// lane-boundary widths, and delta-grade weight sparsity.
    #[test]
    fn int_conv2d_direct_matches_reference_across_backends() {
        let mut rng = Rng::seed_from(53);
        let cases = [
            // (c_in, h, w, c_out, kernel, stride, padding)
            (1usize, 3usize, 3usize, 1usize, 1usize, 1usize, 0usize),
            (3, 8, 8, 4, 1, 1, 0),
            (4, 6, 17, 3, 3, 1, 1),
            (2, 5, 9, 5, 3, 1, 0),
            (3, 7, 16, 2, 3, 2, 1),
            (5, 4, 4, 4, 3, 1, 1),
            (1, 1, 1, 2, 1, 1, 0),
            (2, 9, 33, 3, 3, 1, 1),
        ];
        for (c_in, h, w, c_out, kernel, stride, padding) in cases {
            let params = Conv2dParams { kernel, stride, padding };
            let a = rand_i16(c_in * h * w, &mut rng);
            let wt: Vec<i8> = rand_i8(c_out * c_in * kernel * kernel, &mut rng)
                .into_iter()
                .map(|v| if rng.next_f64() < 0.3 { 0 } else { v })
                .collect();
            let want = reference::int_conv2d_direct(&a, &wt, c_in, h, w, c_out, params);
            for backend in KernelBackend::ALL {
                let got = int_conv2d_direct_with(backend, &a, &wt, c_in, h, w, c_out, params);
                assert_eq!(
                    got, want,
                    "{backend:?} int_conv2d_direct diverged at \
                     c{c_in}-{c_out} {h}x{w} k{kernel}s{stride}p{padding}"
                );
            }
            assert_eq!(
                int_conv2d_direct(&a, &wt, c_in, h, w, c_out, params),
                want,
                "active-backend entry point diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "weight length")]
    fn int_conv2d_direct_rejects_bad_weight_length() {
        let params = Conv2dParams::same3x3();
        let a = vec![0i16; 2 * 4 * 4];
        let w = vec![0i8; 7];
        let _ = int_conv2d_direct(&a, &w, 2, 4, 4, 3, params);
    }

    #[test]
    fn tiled_matches_reference_bitwise() {
        // Shapes around the MR tile boundary and the streaming-vs-blocked
        // dispatch threshold (k·n vs 2^14), with delta-grade sparsity.
        let mut rng = Rng::seed_from(77);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 4),
            (4, 8, 8),
            (5, 16, 3),
            (13, 64, 17),
            (16, 7, 1),
            (9, 300, 60),
            (5, 600, 33),
        ] {
            let a: Vec<i16> = rand_i16(m * k, &mut rng)
                .into_iter()
                .map(|v| if rng.next_f64() < 0.4 { 0 } else { v })
                .collect();
            let w = rand_i8(k * n, &mut rng);
            assert_eq!(
                int_matmul(&a, &w, m, k, n),
                reference::int_matmul(&a, &w, m, k, n),
                "tiled int_matmul diverged at {m}x{k}x{n}"
            );
            let prev: Vec<i32> =
                (0..m * n).map(|_| rng.next_below(1 << 20) as i32 - (1 << 19)).collect();
            assert_eq!(
                delta_matmul_update(&prev, &a, &w, m, k, n),
                reference::delta_matmul_update(&prev, &a, &w, m, k, n),
                "fused delta update diverged at {m}x{k}x{n}"
            );
            let b = rand_i16(k * n, &mut rng);
            let mut tiled = prev.clone();
            accumulate_tiled(&mut tiled, &a, &b, m, k, n);
            let mut scalar = prev.clone();
            reference::accumulate_i16_matmul(&mut scalar, &a, &b, m, k, n);
            assert_eq!(tiled, scalar, "tiled i16 accumulate diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn every_backend_matches_reference_bitwise() {
        // The backend seam's core contract: scalar, tiled, and simd produce
        // the same bytes for every integer kernel.
        let mut rng = Rng::seed_from(41);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 9, 5), (6, 40, 17), (9, 120, 33)] {
            let a: Vec<i16> = rand_i16(m * k, &mut rng)
                .into_iter()
                .map(|v| if rng.next_f64() < 0.5 { 0 } else { v })
                .collect();
            let w = rand_i8(k * n, &mut rng);
            let prev: Vec<i32> =
                (0..m * n).map(|_| rng.next_below(1 << 20) as i32 - (1 << 19)).collect();
            let b16 = rand_i16(k * n, &mut rng);
            let want_mm = reference::int_matmul(&a, &w, m, k, n);
            let want_delta = reference::delta_matmul_update(&prev, &a, &w, m, k, n);
            let mut want_sc = prev.clone();
            reference::accumulate_i16_matmul(&mut want_sc, &a, &b16, m, k, n);
            for backend in KernelBackend::available() {
                assert_eq!(
                    int_matmul_with(backend, &a, &w, m, k, n),
                    want_mm,
                    "int_matmul {backend} diverged at {m}x{k}x{n}"
                );
                assert_eq!(
                    delta_matmul_update_with(backend, &prev, &a, &w, m, k, n),
                    want_delta,
                    "delta update {backend} diverged at {m}x{k}x{n}"
                );
                let mut got = prev.clone();
                accumulate_i16(backend, &mut got, &a, &b16, m, k, n);
                assert_eq!(got, want_sc, "i16 accumulate {backend} diverged at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn delta_update_is_exact() {
        let mut rng = Rng::seed_from(21);
        let (m, k, n) = (3, 5, 4);
        let prev: Vec<i8> = rand_i8(m * k, &mut rng);
        let w = rand_i8(k * n, &mut rng);
        // Current = prev + small delta.
        let delta: Vec<i16> = (0..m * k).map(|_| rng.next_below(7) as i16 - 3).collect();
        let curr: Vec<i16> = prev.iter().zip(&delta).map(|(&p, &d)| p as i16 + d).collect();
        let dense_prev = int_matmul(&widen(&prev), &w, m, k, n);
        let dense_curr = int_matmul(&curr, &w, m, k, n);
        let via_delta = delta_matmul_update(&dense_prev, &delta, &w, m, k, n);
        assert_eq!(dense_curr, via_delta, "delta path must be bit-exact");
    }

    #[test]
    fn fig7_worked_example() {
        // The paper's Fig. 7 3x3 example: Activation_{t+1}, Weight, then the
        // temporal difference at step t reconstructs Output_t exactly.
        let act_t1: Vec<i16> = vec![120, 114, 84, 51, 43, 37, 88, 77, 96];
        let weight: Vec<i8> = vec![12, 4, 8, -1, 3, -2, -5, -1, 6];
        let out_t1 = int_matmul(&act_t1, &weight, 3, 3, 3);
        assert_eq!(out_t1, vec![906, 738, 1236, 384, 296, 544, 499, 487, 1126]);

        let act_t: Vec<i16> = vec![120, 117, 84, 47, 43, 37, 20, 71, 95];
        let delta: Vec<i16> = act_t.iter().zip(&act_t1).map(|(&a, &b)| a - b).collect();
        assert_eq!(delta, vec![0, 3, 0, -4, 0, 0, -68, -6, -1]);
        let out_t = delta_matmul_update(&out_t1, &delta, &weight, 3, 3, 3);
        assert_eq!(out_t, int_matmul(&act_t, &weight, 3, 3, 3));
        assert_eq!(out_t, vec![903, 747, 1230, 336, 280, 512, -306, 198, 588]);
    }

    #[test]
    fn attention_decomposition_is_exact() {
        let mut rng = Rng::seed_from(5);
        let (m, d, n) = (4, 3, 4);
        let q_prev: Vec<i16> = (0..m * d).map(|_| rng.next_below(255) as i16 - 127).collect();
        let k_prev: Vec<i16> = (0..n * d).map(|_| rng.next_below(255) as i16 - 127).collect();
        let dq: Vec<i16> = (0..m * d).map(|_| rng.next_below(9) as i16 - 4).collect();
        let dk: Vec<i16> = (0..n * d).map(|_| rng.next_below(9) as i16 - 4).collect();
        let q_t: Vec<i16> = q_prev.iter().zip(&dq).map(|(&a, &b)| a + b).collect();
        let k_t: Vec<i16> = k_prev.iter().zip(&dk).map(|(&a, &b)| a + b).collect();

        // Transpose helpers ([n, d] → [d, n]).
        let tr = |v: &[i16], rows: usize, cols: usize| {
            let mut t = vec![0i16; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    t[c * rows + r] = v[r * cols + c];
                }
            }
            t
        };
        let k_prev_t = tr(&k_prev, n, d);
        let k_t_t = tr(&k_t, n, d);
        let dk_t = tr(&dk, n, d);

        let prev_scores = int_scores(&q_prev, &k_prev_t, m, d, n);
        let dense = int_scores(&q_t, &k_t_t, m, d, n);
        let via_delta = attention_delta_scores(&prev_scores, &q_t, &dq, &k_prev_t, &dk_t, m, d, n);
        assert_eq!(dense, via_delta, "attention decomposition must be bit-exact");
    }

    #[test]
    fn zero_delta_is_free_and_exact() {
        let prev_out = vec![5i32, -3, 7, 9];
        let delta = vec![0i16; 4];
        let w = vec![1i8, 2, 3, 4];
        let out = delta_matmul_update(&prev_out, &delta, &w, 2, 2, 2);
        assert_eq!(out, prev_out);
    }

    #[test]
    #[should_panic(expected = "activation length")]
    fn int_matmul_length_check() {
        int_matmul(&[0i16; 3], &[0i8; 4], 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "delta length")]
    fn delta_update_length_check() {
        delta_matmul_update(&[0i32; 4], &[0i16; 3], &[0i8; 4], 2, 2, 2);
    }
}
