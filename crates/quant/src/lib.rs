//! Integer quantization stack for the Ditto reproduction.
//!
//! The paper evaluates Ditto on A8W8 (8-bit activation, 8-bit weight)
//! quantized diffusion models (§VI-A). This crate provides:
//!
//! * [`QTensor`] — a symmetric, per-tensor quantized `i8` tensor with an
//!   `f32` scale, plus exact dequantization.
//! * [`quantizer`] — dynamic (per-call abs-max) quantization for the
//!   diffusion transformers, and Q-Diffusion-style calibrated static
//!   quantization with time-step clustering for the UNet models.
//! * [`calib`] — the offline calibration pass that records per-layer,
//!   per-time-step value ranges and clusters time steps by range.
//! * [`bitwidth`] — the bit-width requirement classifier of §III-B
//!   (zero / ≤4-bit / 8-bit / over-8-bit temporal differences).
//! * [`bops`] — Bit Operations accounting (Fig. 5 / Fig. 6).
//! * [`kernels`] — exact integer matmul / delta-matmul kernels with `i32`
//!   accumulation, used to prove numerical equivalence of difference
//!   processing.
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//! use quant::QTensor;
//!
//! let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3])?;
//! let q = QTensor::quantize_dynamic(&x);
//! let back = q.dequantize();
//! // Quantization error is bounded by half a step.
//! for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
//!     assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
//! }
//! # Ok::<(), tensor::TensorError>(())
//! ```

pub mod bitwidth;
pub mod bops;
pub mod calib;
pub mod kernels;
pub mod qtensor;
pub mod quantizer;

pub use bitwidth::{BitWidthClass, BitWidthHistogram};
pub use bops::BopsModel;
pub use calib::{CalibrationTable, Calibrator};
pub use qtensor::QTensor;
pub use quantizer::{QuantMode, Quantizer};
