//! Explicit-SIMD integer accumulation kernels (`std::arch`: x86 AVX2 and
//! SSE2, aarch64 NEON) — the [`tensor::backend::KernelBackend::Simd`]
//! implementation of the paper's hot path.
//!
//! # Bit-exactness
//!
//! Every kernel here produces exactly the accumulators of the scalar
//! reference loops. Integer multiplication is exact, and `i32` addition
//! (wrapping, as in release builds) is associative and commutative, so
//! the SIMD kernels are free to *reassociate* sums — which is exactly
//! what they do:
//!
//! * the row kernels compute `out[j] += av·b[j]` for eight `j` lanes at a
//!   time (`vpmulld` on AVX2, `vmlal` on NEON), identical term-by-term to
//!   the scalar loop;
//! * the pair kernels fold **two** non-zero activation rows per pass with
//!   `vpmaddwd`, computing `out[j] += (av₀·b₀[j] + av₁·b₁[j])` — the same
//!   two addends the scalar loop would add one after the other, grouped
//!   differently. `vpmaddwd` needs both factors in `i16`; activations are
//!   `i16` by contract and `i8` weights widen losslessly, and its internal
//!   pair-sum wraps in `i32` exactly like the release-mode scalar adds.
//!   (`vpmaddubsw` was rejected for the same slot: its `u8×i8` products
//!   *saturate* the intermediate `i16` pair-sum, which breaks exactness.)
//! * the **dense-row** kernels handle the 0%-sparsity regime: when an
//!   activation row has (almost) no zeros, the per-pass read-modify-write
//!   of `out` dominates, so instead each 8-column strip of the output row
//!   is held in registers while the *entire* `k` extent streams through
//!   `vpmaddwd` pairs (`vmlal` on NEON) — `out` is loaded and stored once
//!   per strip instead of once per activation pair. Skipping the zero-skip
//!   is free for integers: wrapping adds of zero products change nothing.
//!
//! The per-row **zero-skip** of delta execution is preserved where it
//! pays: rows above the density threshold take the dense kernel (zeros
//! there are pure overhead), all other rows keep the scanning pair fold.
//!
//! The dispatchers below run the kernels for the *active*
//! [`SimdLevel`] — so forcing `DITTO_SIMD_LEVEL=sse2` on an AVX2 host
//! exercises the real SSE2 kernels — and fall back to the tiled loops at
//! level `none` (architectures without kernels compile only the
//! fallback), so callers never need an architecture `cfg` of their own.

use tensor::backend::{simd_level, SimdLevel};

/// `Simd`-backend accumulation for `i8` weights: `out [m,n] += a [m,k] ×
/// b [k,n]` with zero-skip (sparse rows) or the dense-row kernel.
pub(super) fn accumulate_i8(out: &mut [i32], a: &[i16], b: &[i8], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    match simd_level() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Avx2 => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            avx2::acc_pair_i8,
            avx2::acc_row_i8,
            avx2::dense_row_i8,
        ),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Sse2 => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            sse2::acc_pair_i8,
            sse2::acc_row_i8,
            sse2::dense_row_i8,
        ),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            neon::acc_pair_i8,
            neon::acc_row_i8,
            neon::dense_row_i8,
        ),
        _ => super::accumulate_tiled(out, a, b, m, k, n),
    }
}

/// `Simd`-backend accumulation for `i16` operands (attention scores).
pub(super) fn accumulate_i16(out: &mut [i32], a: &[i16], b: &[i16], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    match simd_level() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Avx2 => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            avx2::acc_pair_i16,
            avx2::acc_row_i16,
            avx2::dense_row_i16,
        ),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Sse2 => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            sse2::acc_pair_i16,
            sse2::acc_row_i16,
            sse2::dense_row_i16,
        ),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => accumulate_rows(
            out,
            a,
            b,
            m,
            k,
            n,
            neon::acc_pair_i16,
            neon::acc_row_i16,
            neon::dense_row_i16,
        ),
        _ => super::accumulate_tiled(out, a, b, m, k, n),
    }
}

/// Direct-conv AXPY at the active SIMD level: `out[j] += wv · arow[j]`
/// over one contiguous activation-row slice. This is the inner step of
/// [`super::int_conv2d_direct`]'s stride-1 path — one weight tap streamed
/// against a shifted activation row — and reuses the same per-level
/// `acc_row_i16` kernels as the matmul fold. Exactness is automatic:
/// integer products are exact and wrapping `i32` addition is associative,
/// so any accumulation order reproduces the scalar reference bit-for-bit.
pub(super) fn conv_axpy_i16(out: &mut [i32], wv: i32, arow: &[i16]) {
    debug_assert_eq!(out.len(), arow.len());
    match simd_level() {
        // SAFETY: the kernels require only their declared target feature,
        // which `simd_level()` verified at runtime.
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { avx2::acc_row_i16(out, wv, arow) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe { sse2::acc_row_i16(out, wv, arow) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::acc_row_i16(out, wv, arow) },
        _ => {
            for (o, &a) in out.iter_mut().zip(arow) {
                *o += wv * a as i32;
            }
        }
    }
}

/// Zeros-per-row threshold for the dense-row kernel: rows with fewer than
/// `k/8` zero activations (⪅ 12.5% sparsity) take the register-resident
/// dense kernel; sparser rows keep the scanning pair fold, whose zero-skip
/// is what makes delta execution pay. Purely a performance dispatch —
/// wrapping-`i32` addition makes both orders exact.
const DENSE_ZEROS_PER_K: usize = 8;

/// The per-row driver shared by every SIMD level and operand type: rows
/// below the sparsity threshold go to the register-resident `dense`
/// kernel; all others scan activations, skip zeros, and hand non-zero
/// `(av, b-row)` entries to the `pair` kernel two at a time (an unpaired
/// leftover goes to the single-`row` kernel). Pairing halves the number
/// of accumulator read-modify-write passes over `out`; the dense kernel
/// eliminates them entirely.
#[cfg(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate_rows<W: Copy + Into<i32>>(
    out: &mut [i32],
    a: &[i16],
    b: &[W],
    m: usize,
    k: usize,
    n: usize,
    pair: unsafe fn(&mut [i32], i16, &[W], i16, &[W]),
    row: unsafe fn(&mut [i32], i32, &[W]),
    dense: unsafe fn(&mut [i32], &[i16], &[W], usize),
) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let zeros = arow.iter().filter(|&&av| av == 0).count();
        if k > 0 && zeros * DENSE_ZEROS_PER_K < k {
            // SAFETY: the kernels require only their declared target
            // feature, which `simd_level()` verified at runtime (only
            // hardware-supported levels can ever be active).
            unsafe { dense(orow, arow, b, n) };
            continue;
        }
        let mut pending: Option<(usize, i16)> = None;
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            match pending.take() {
                None => pending = Some((kk, av)),
                // SAFETY: as above.
                Some((k0, av0)) => unsafe {
                    pair(orow, av0, &b[k0 * n..(k0 + 1) * n], av, &b[kk * n..(kk + 1) * n])
                },
            }
        }
        if let Some((k0, av0)) = pending {
            // SAFETY: as above.
            unsafe { row(orow, av0 as i32, &b[k0 * n..(k0 + 1) * n]) };
        }
    }
}

/// Broadcast of an `(av₀, av₁)` multiplier pair packed into one 32-bit
/// lane, in the low/high `i16` layout `pmaddwd`/`vpmaddwd` expect.
/// Shared by the AVX2 and SSE2 kernels so the packing can never diverge
/// between levels.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[inline]
fn pair_multiplier(av0: i16, av1: i16) -> i32 {
    ((av1 as u16 as i32) << 16) | (av0 as u16 as i32)
}

/// Scalar tail of the row kernels (fewer than one vector of remaining
/// lanes), generic over the weight type so every SIMD level shares the
/// one copy.
///
/// # Safety
///
/// `j ≤ out.len()` and `out.len() ≤ brow.len()` elements must be valid.
#[cfg(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
unsafe fn acc_row_tail<W: Copy + Into<i32>>(out: &mut [i32], av: i32, brow: &[W], mut j: usize) {
    let n = out.len();
    while j < n {
        let bv: i32 = (*brow.get_unchecked(j)).into();
        *out.get_unchecked_mut(j) = out.get_unchecked(j).wrapping_add(av.wrapping_mul(bv));
        j += 1;
    }
}

/// Scalar tail of the pair kernels, generic over the weight type and
/// shared across SIMD levels.
///
/// # Safety
///
/// As [`acc_row_tail`], for both `b` rows.
#[cfg(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
unsafe fn acc_pair_tail<W: Copy + Into<i32>>(
    out: &mut [i32],
    av0: i16,
    brow0: &[W],
    av1: i16,
    brow1: &[W],
    mut j: usize,
) {
    let n = out.len();
    while j < n {
        let b0: i32 = (*brow0.get_unchecked(j)).into();
        let b1: i32 = (*brow1.get_unchecked(j)).into();
        let s = (av0 as i32).wrapping_mul(b0).wrapping_add((av1 as i32).wrapping_mul(b1));
        *out.get_unchecked_mut(j) = out.get_unchecked(j).wrapping_add(s);
        j += 1;
    }
}

/// Scalar column tail of the dense-row kernels: the remaining `n % 8`
/// output columns accumulate the whole activation row (no zero-skip, like
/// the vector body — exact for wrapping integer adds). Generic over the
/// weight type and shared across SIMD levels.
///
/// # Safety
///
/// `j ≤ n`, `orow.len() == n`, and `b` must hold `arow.len()·n` elements.
#[cfg(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
unsafe fn dense_col_tail<W: Copy + Into<i32>>(
    orow: &mut [i32],
    arow: &[i16],
    b: &[W],
    n: usize,
    mut j: usize,
) {
    while j < n {
        let mut acc = *orow.get_unchecked(j);
        for (kk, &av) in arow.iter().enumerate() {
            let bv: i32 = (*b.get_unchecked(kk * n + j)).into();
            acc = acc.wrapping_add((av as i32).wrapping_mul(bv));
        }
        *orow.get_unchecked_mut(j) = acc;
        j += 1;
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use super::{acc_pair_tail, acc_row_tail, dense_col_tail, pair_multiplier};

    /// `out[j] += av·b[j]` over one `i8` row (8 lanes per step).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn acc_row_i8(out: &mut [i32], av: i32, brow: &[i8]) {
        let n = brow.len();
        let vav = _mm256_set1_epi32(av);
        let mut j = 0;
        while j + 8 <= n {
            let b8 = _mm_loadl_epi64(brow.as_ptr().add(j) as *const __m128i);
            let prod = _mm256_mullo_epi32(_mm256_cvtepi8_epi32(b8), vav);
            let o = _mm256_loadu_si256(out.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, _mm256_add_epi32(o, prod));
            j += 8;
        }
        acc_row_tail(out, av, brow, j);
    }

    /// `out[j] += av·b[j]` over one `i16` row (8 lanes per step).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn acc_row_i16(out: &mut [i32], av: i32, brow: &[i16]) {
        let n = brow.len();
        let vav = _mm256_set1_epi32(av);
        let mut j = 0;
        while j + 8 <= n {
            let b16 = _mm_loadu_si128(brow.as_ptr().add(j) as *const __m128i);
            let prod = _mm256_mullo_epi32(_mm256_cvtepi16_epi32(b16), vav);
            let o = _mm256_loadu_si256(out.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, _mm256_add_epi32(o, prod));
            j += 8;
        }
        acc_row_tail(out, av, brow, j);
    }

    /// `out[j] += av₀·b₀[j] + av₁·b₁[j]` over two `i8` rows via
    /// `vpmaddwd`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn acc_pair_i8(
        out: &mut [i32],
        av0: i16,
        brow0: &[i8],
        av1: i16,
        brow1: &[i8],
    ) {
        let n = brow0.len();
        let pair = _mm256_set1_epi32(pair_multiplier(av0, av1));
        let mut j = 0;
        while j + 8 <= n {
            let b0 = _mm_cvtepi8_epi16(_mm_loadl_epi64(brow0.as_ptr().add(j) as *const __m128i));
            let b1 = _mm_cvtepi8_epi16(_mm_loadl_epi64(brow1.as_ptr().add(j) as *const __m128i));
            let inter = _mm256_set_m128i(_mm_unpackhi_epi16(b0, b1), _mm_unpacklo_epi16(b0, b1));
            let prod = _mm256_madd_epi16(inter, pair);
            let o = _mm256_loadu_si256(out.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, _mm256_add_epi32(o, prod));
            j += 8;
        }
        acc_pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// `out[j] += av₀·b₀[j] + av₁·b₁[j]` over two `i16` rows via
    /// `vpmaddwd`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn acc_pair_i16(
        out: &mut [i32],
        av0: i16,
        brow0: &[i16],
        av1: i16,
        brow1: &[i16],
    ) {
        let n = brow0.len();
        let pair = _mm256_set1_epi32(pair_multiplier(av0, av1));
        let mut j = 0;
        while j + 8 <= n {
            let b0 = _mm_loadu_si128(brow0.as_ptr().add(j) as *const __m128i);
            let b1 = _mm_loadu_si128(brow1.as_ptr().add(j) as *const __m128i);
            let inter = _mm256_set_m128i(_mm_unpackhi_epi16(b0, b1), _mm_unpacklo_epi16(b0, b1));
            let prod = _mm256_madd_epi16(inter, pair);
            let o = _mm256_loadu_si256(out.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, _mm256_add_epi32(o, prod));
            j += 8;
        }
        acc_pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// Dense-row `i8` kernel: one 8-column strip of `out` stays in a
    /// register while the whole activation row streams through `vpmaddwd`
    /// pairs (odd leftover via `vpmulld`) — `out` traffic drops from one
    /// read-modify-write per pair to one per strip.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dense_row_i8(orow: &mut [i32], arow: &[i16], b: &[i8], n: usize) {
        let k = arow.len();
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_si256(orow.as_ptr().add(j) as *const __m256i);
            let mut kk = 0;
            while kk + 2 <= k {
                let pair = _mm256_set1_epi32(pair_multiplier(
                    *arow.get_unchecked(kk),
                    *arow.get_unchecked(kk + 1),
                ));
                let b0 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    b.as_ptr().add(kk * n + j) as *const __m128i
                ));
                let b1 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    b.as_ptr().add((kk + 1) * n + j) as *const __m128i
                ));
                let inter =
                    _mm256_set_m128i(_mm_unpackhi_epi16(b0, b1), _mm_unpacklo_epi16(b0, b1));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(inter, pair));
                kk += 2;
            }
            if kk < k {
                let vav = _mm256_set1_epi32(*arow.get_unchecked(kk) as i32);
                let b8 = _mm_loadl_epi64(b.as_ptr().add(kk * n + j) as *const __m128i);
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(_mm256_cvtepi8_epi32(b8), vav));
            }
            _mm256_storeu_si256(orow.as_mut_ptr().add(j) as *mut __m256i, acc);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }

    /// Dense-row `i16` kernel (attention scores at 0% sparsity).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dense_row_i16(orow: &mut [i32], arow: &[i16], b: &[i16], n: usize) {
        let k = arow.len();
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_si256(orow.as_ptr().add(j) as *const __m256i);
            let mut kk = 0;
            while kk + 2 <= k {
                let pair = _mm256_set1_epi32(pair_multiplier(
                    *arow.get_unchecked(kk),
                    *arow.get_unchecked(kk + 1),
                ));
                let b0 = _mm_loadu_si128(b.as_ptr().add(kk * n + j) as *const __m128i);
                let b1 = _mm_loadu_si128(b.as_ptr().add((kk + 1) * n + j) as *const __m128i);
                let inter =
                    _mm256_set_m128i(_mm_unpackhi_epi16(b0, b1), _mm_unpacklo_epi16(b0, b1));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(inter, pair));
                kk += 2;
            }
            if kk < k {
                let vav = _mm256_set1_epi32(*arow.get_unchecked(kk) as i32);
                let b16 = _mm_loadu_si128(b.as_ptr().add(kk * n + j) as *const __m128i);
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(_mm256_cvtepi16_epi32(b16), vav));
            }
            _mm256_storeu_si256(orow.as_mut_ptr().add(j) as *mut __m256i, acc);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod sse2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use super::{acc_pair_tail as pair_tail, dense_col_tail, pair_multiplier};

    /// Sign-extends the low 8 bytes of `v` to eight `i16` lanes (SSE2 has
    /// no `pmovsxbw`; interleave-with-self then arithmetic-shift does it).
    #[inline]
    unsafe fn widen_i8(v: __m128i) -> __m128i {
        _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8)
    }

    /// Two-row `i8` accumulation via `pmaddwd` (4 lanes per 128-bit op).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn acc_pair_i8(
        out: &mut [i32],
        av0: i16,
        brow0: &[i8],
        av1: i16,
        brow1: &[i8],
    ) {
        let n = brow0.len();
        let pair = _mm_set1_epi32(pair_multiplier(av0, av1));
        let mut j = 0;
        while j + 8 <= n {
            let b0 = widen_i8(_mm_loadl_epi64(brow0.as_ptr().add(j) as *const __m128i));
            let b1 = widen_i8(_mm_loadl_epi64(brow1.as_ptr().add(j) as *const __m128i));
            madd_store(out, j, _mm_unpacklo_epi16(b0, b1), _mm_unpackhi_epi16(b0, b1), pair);
            j += 8;
        }
        pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// Two-row `i16` accumulation via `pmaddwd`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn acc_pair_i16(
        out: &mut [i32],
        av0: i16,
        brow0: &[i16],
        av1: i16,
        brow1: &[i16],
    ) {
        let n = brow0.len();
        let pair = _mm_set1_epi32(pair_multiplier(av0, av1));
        let mut j = 0;
        while j + 8 <= n {
            let b0 = _mm_loadu_si128(brow0.as_ptr().add(j) as *const __m128i);
            let b1 = _mm_loadu_si128(brow1.as_ptr().add(j) as *const __m128i);
            madd_store(out, j, _mm_unpacklo_epi16(b0, b1), _mm_unpackhi_epi16(b0, b1), pair);
            j += 8;
        }
        pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// `pmaddwd` + accumulate for 8 output lanes given the interleaved
    /// low/high pair vectors.
    #[inline]
    unsafe fn madd_store(out: &mut [i32], j: usize, lo: __m128i, hi: __m128i, pair: __m128i) {
        let p_lo = _mm_madd_epi16(lo, pair);
        let p_hi = _mm_madd_epi16(hi, pair);
        let o_lo = _mm_loadu_si128(out.as_ptr().add(j) as *const __m128i);
        let o_hi = _mm_loadu_si128(out.as_ptr().add(j + 4) as *const __m128i);
        _mm_storeu_si128(out.as_mut_ptr().add(j) as *mut __m128i, _mm_add_epi32(o_lo, p_lo));
        _mm_storeu_si128(out.as_mut_ptr().add(j + 4) as *mut __m128i, _mm_add_epi32(o_hi, p_hi));
    }

    /// Single `i8` row: the pair kernel against itself with a zero second
    /// multiplier (`av·b[j] + 0·b[j]` is exactly `av·b[j]`).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn acc_row_i8(out: &mut [i32], av: i32, brow: &[i8]) {
        acc_pair_i8(out, av as i16, brow, 0, brow);
    }

    /// Single `i16` row, same zero-partner trick.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn acc_row_i16(out: &mut [i32], av: i32, brow: &[i16]) {
        acc_pair_i16(out, av as i16, brow, 0, brow);
    }

    /// Dense-row `i8` kernel: an 8-column strip of `out` stays in two
    /// `xmm` accumulators while the whole activation row streams through
    /// `pmaddwd` pairs; an odd leftover row reuses the zero-partner trick
    /// (SSE2 has no `pmulld`).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dense_row_i8(orow: &mut [i32], arow: &[i16], b: &[i8], n: usize) {
        let k = arow.len();
        let zero = _mm_setzero_si128();
        let mut j = 0;
        while j + 8 <= n {
            let mut acc_lo = _mm_loadu_si128(orow.as_ptr().add(j) as *const __m128i);
            let mut acc_hi = _mm_loadu_si128(orow.as_ptr().add(j + 4) as *const __m128i);
            let mut kk = 0;
            while kk + 2 <= k {
                let pair = _mm_set1_epi32(pair_multiplier(
                    *arow.get_unchecked(kk),
                    *arow.get_unchecked(kk + 1),
                ));
                let b0 = widen_i8(_mm_loadl_epi64(b.as_ptr().add(kk * n + j) as *const __m128i));
                let b1 =
                    widen_i8(_mm_loadl_epi64(b.as_ptr().add((kk + 1) * n + j) as *const __m128i));
                acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(_mm_unpacklo_epi16(b0, b1), pair));
                acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(_mm_unpackhi_epi16(b0, b1), pair));
                kk += 2;
            }
            if kk < k {
                let pair = _mm_set1_epi32(pair_multiplier(*arow.get_unchecked(kk), 0));
                let b0 = widen_i8(_mm_loadl_epi64(b.as_ptr().add(kk * n + j) as *const __m128i));
                acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(_mm_unpacklo_epi16(b0, zero), pair));
                acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(_mm_unpackhi_epi16(b0, zero), pair));
            }
            _mm_storeu_si128(orow.as_mut_ptr().add(j) as *mut __m128i, acc_lo);
            _mm_storeu_si128(orow.as_mut_ptr().add(j + 4) as *mut __m128i, acc_hi);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }

    /// Dense-row `i16` kernel.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dense_row_i16(orow: &mut [i32], arow: &[i16], b: &[i16], n: usize) {
        let k = arow.len();
        let zero = _mm_setzero_si128();
        let mut j = 0;
        while j + 8 <= n {
            let mut acc_lo = _mm_loadu_si128(orow.as_ptr().add(j) as *const __m128i);
            let mut acc_hi = _mm_loadu_si128(orow.as_ptr().add(j + 4) as *const __m128i);
            let mut kk = 0;
            while kk + 2 <= k {
                let pair = _mm_set1_epi32(pair_multiplier(
                    *arow.get_unchecked(kk),
                    *arow.get_unchecked(kk + 1),
                ));
                let b0 = _mm_loadu_si128(b.as_ptr().add(kk * n + j) as *const __m128i);
                let b1 = _mm_loadu_si128(b.as_ptr().add((kk + 1) * n + j) as *const __m128i);
                acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(_mm_unpacklo_epi16(b0, b1), pair));
                acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(_mm_unpackhi_epi16(b0, b1), pair));
                kk += 2;
            }
            if kk < k {
                let pair = _mm_set1_epi32(pair_multiplier(*arow.get_unchecked(kk), 0));
                let b0 = _mm_loadu_si128(b.as_ptr().add(kk * n + j) as *const __m128i);
                acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(_mm_unpacklo_epi16(b0, zero), pair));
                acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(_mm_unpackhi_epi16(b0, zero), pair));
            }
            _mm_storeu_si128(orow.as_mut_ptr().add(j) as *mut __m128i, acc_lo);
            _mm_storeu_si128(orow.as_mut_ptr().add(j + 4) as *mut __m128i, acc_hi);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    use super::{acc_pair_tail, acc_row_tail, dense_col_tail};

    /// `out[j] += av·b[j]` over one `i8` row (8 lanes per step via two
    /// `vmlal_s16` widening multiply-accumulates; products of `i16`
    /// operands are exact in `i32` and the accumulate add wraps).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn acc_row_i8(out: &mut [i32], av: i32, brow: &[i8]) {
        let n = brow.len();
        let vav = vdup_n_s16(av as i16);
        let mut j = 0;
        while j + 8 <= n {
            let b16 = vmovl_s8(vld1_s8(brow.as_ptr().add(j)));
            let lo = vmlal_s16(vld1q_s32(out.as_ptr().add(j)), vget_low_s16(b16), vav);
            let hi = vmlal_s16(vld1q_s32(out.as_ptr().add(j + 4)), vget_high_s16(b16), vav);
            vst1q_s32(out.as_mut_ptr().add(j), lo);
            vst1q_s32(out.as_mut_ptr().add(j + 4), hi);
            j += 8;
        }
        acc_row_tail(out, av, brow, j);
    }

    /// `out[j] += av·b[j]` over one `i16` row.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn acc_row_i16(out: &mut [i32], av: i32, brow: &[i16]) {
        let n = brow.len();
        let vav = vdup_n_s16(av as i16);
        let mut j = 0;
        while j + 8 <= n {
            let b16 = vld1q_s16(brow.as_ptr().add(j));
            let lo = vmlal_s16(vld1q_s32(out.as_ptr().add(j)), vget_low_s16(b16), vav);
            let hi = vmlal_s16(vld1q_s32(out.as_ptr().add(j + 4)), vget_high_s16(b16), vav);
            vst1q_s32(out.as_mut_ptr().add(j), lo);
            vst1q_s32(out.as_mut_ptr().add(j + 4), hi);
            j += 8;
        }
        acc_row_tail(out, av, brow, j);
    }

    /// `out[j] += av₀·b₀[j] + av₁·b₁[j]` over two `i8` rows (chained
    /// `vmlal_s16`; wrapping `i32` adds make the grouping exact).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn acc_pair_i8(
        out: &mut [i32],
        av0: i16,
        brow0: &[i8],
        av1: i16,
        brow1: &[i8],
    ) {
        let n = brow0.len();
        let vav0 = vdup_n_s16(av0);
        let vav1 = vdup_n_s16(av1);
        let mut j = 0;
        while j + 8 <= n {
            let b0 = vmovl_s8(vld1_s8(brow0.as_ptr().add(j)));
            let b1 = vmovl_s8(vld1_s8(brow1.as_ptr().add(j)));
            let mut lo = vld1q_s32(out.as_ptr().add(j));
            let mut hi = vld1q_s32(out.as_ptr().add(j + 4));
            lo = vmlal_s16(lo, vget_low_s16(b0), vav0);
            lo = vmlal_s16(lo, vget_low_s16(b1), vav1);
            hi = vmlal_s16(hi, vget_high_s16(b0), vav0);
            hi = vmlal_s16(hi, vget_high_s16(b1), vav1);
            vst1q_s32(out.as_mut_ptr().add(j), lo);
            vst1q_s32(out.as_mut_ptr().add(j + 4), hi);
            j += 8;
        }
        acc_pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// `out[j] += av₀·b₀[j] + av₁·b₁[j]` over two `i16` rows.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn acc_pair_i16(
        out: &mut [i32],
        av0: i16,
        brow0: &[i16],
        av1: i16,
        brow1: &[i16],
    ) {
        let n = brow0.len();
        let vav0 = vdup_n_s16(av0);
        let vav1 = vdup_n_s16(av1);
        let mut j = 0;
        while j + 8 <= n {
            let b0 = vld1q_s16(brow0.as_ptr().add(j));
            let b1 = vld1q_s16(brow1.as_ptr().add(j));
            let mut lo = vld1q_s32(out.as_ptr().add(j));
            let mut hi = vld1q_s32(out.as_ptr().add(j + 4));
            lo = vmlal_s16(lo, vget_low_s16(b0), vav0);
            lo = vmlal_s16(lo, vget_low_s16(b1), vav1);
            hi = vmlal_s16(hi, vget_high_s16(b0), vav0);
            hi = vmlal_s16(hi, vget_high_s16(b1), vav1);
            vst1q_s32(out.as_mut_ptr().add(j), lo);
            vst1q_s32(out.as_mut_ptr().add(j + 4), hi);
            j += 8;
        }
        acc_pair_tail(out, av0, brow0, av1, brow1, j);
    }

    /// Dense-row `i8` kernel: an 8-column strip of `out` stays in two
    /// `int32x4` accumulators while the whole activation row streams
    /// through `vmlal_s16`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dense_row_i8(orow: &mut [i32], arow: &[i16], b: &[i8], n: usize) {
        let mut j = 0;
        while j + 8 <= n {
            let mut acc_lo = vld1q_s32(orow.as_ptr().add(j));
            let mut acc_hi = vld1q_s32(orow.as_ptr().add(j + 4));
            for (kk, &av) in arow.iter().enumerate() {
                let vav = vdup_n_s16(av);
                let b16 = vmovl_s8(vld1_s8(b.as_ptr().add(kk * n + j)));
                acc_lo = vmlal_s16(acc_lo, vget_low_s16(b16), vav);
                acc_hi = vmlal_s16(acc_hi, vget_high_s16(b16), vav);
            }
            vst1q_s32(orow.as_mut_ptr().add(j), acc_lo);
            vst1q_s32(orow.as_mut_ptr().add(j + 4), acc_hi);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }

    /// Dense-row `i16` kernel.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dense_row_i16(orow: &mut [i32], arow: &[i16], b: &[i16], n: usize) {
        let mut j = 0;
        while j + 8 <= n {
            let mut acc_lo = vld1q_s32(orow.as_ptr().add(j));
            let mut acc_hi = vld1q_s32(orow.as_ptr().add(j + 4));
            for (kk, &av) in arow.iter().enumerate() {
                let vav = vdup_n_s16(av);
                let b16 = vld1q_s16(b.as_ptr().add(kk * n + j));
                acc_lo = vmlal_s16(acc_lo, vget_low_s16(b16), vav);
                acc_hi = vmlal_s16(acc_hi, vget_high_s16(b16), vav);
            }
            vst1q_s32(orow.as_mut_ptr().add(j), acc_lo);
            vst1q_s32(orow.as_mut_ptr().add(j + 4), acc_hi);
            j += 8;
        }
        dense_col_tail(orow, arow, b, n, j);
    }
}

#[cfg(all(test, any(target_arch = "x86", target_arch = "x86_64")))]
mod tests {
    use super::*;
    use tensor::backend::hw_simd_level;
    use tensor::Rng;

    fn rand_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
        (0..len).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect()
    }

    fn sparse_i16(len: usize, zero_frac: f64, rng: &mut Rng) -> Vec<i16> {
        (0..len)
            .map(|_| if rng.next_f64() < zero_frac { 0 } else { rng.next_below(511) as i16 - 255 })
            .collect()
    }

    /// Both the AVX2 and SSE2 per-level drivers — sparse pending-pair scan
    /// *and* the dense-row kernels — must reproduce the tiled accumulators
    /// bit for bit on shapes around every lane boundary (8-lane steps,
    /// scalar tails, single-leftover rows, odd `k` for the pair fold).
    /// The kernels are taken directly per level (not through the mutable
    /// active-level global), so this is race-free under parallel tests.
    #[test]
    #[allow(clippy::type_complexity)]
    fn simd_levels_match_tiled_bitwise() {
        let mut rng = Rng::seed_from(31);
        let mut level_kernels: Vec<(
            &str,
            unsafe fn(&mut [i32], i16, &[i8], i16, &[i8]),
            unsafe fn(&mut [i32], i32, &[i8]),
            unsafe fn(&mut [i32], &[i16], &[i8], usize),
            unsafe fn(&mut [i32], i16, &[i16], i16, &[i16]),
            unsafe fn(&mut [i32], i32, &[i16]),
            unsafe fn(&mut [i32], &[i16], &[i16], usize),
        )> = Vec::new();
        if matches!(hw_simd_level(), SimdLevel::Avx2) {
            level_kernels.push((
                "avx2",
                avx2::acc_pair_i8,
                avx2::acc_row_i8,
                avx2::dense_row_i8,
                avx2::acc_pair_i16,
                avx2::acc_row_i16,
                avx2::dense_row_i16,
            ));
        }
        if hw_simd_level() != SimdLevel::None {
            // SSE2 is testable whenever any x86 SIMD exists.
            level_kernels.push((
                "sse2",
                sse2::acc_pair_i8,
                sse2::acc_row_i8,
                sse2::dense_row_i8,
                sse2::acc_pair_i16,
                sse2::acc_row_i16,
                sse2::dense_row_i16,
            ));
        }
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 9, 8), (5, 16, 19), (13, 64, 24)]
        {
            // 0.0 routes every row through the dense kernels; 0.5/0.9
            // keep the pending-pair scan (and 0.05 mixes both per row).
            for zero_frac in [0.0, 0.05, 0.5, 0.9] {
                let a = sparse_i16(m * k, zero_frac, &mut rng);
                let b8 = rand_i8(k * n, &mut rng);
                let b16 = sparse_i16(k * n, 0.0, &mut rng);
                let init: Vec<i32> =
                    (0..m * n).map(|_| rng.next_below(1 << 20) as i32 - (1 << 19)).collect();
                let mut want8 = init.clone();
                crate::kernels::accumulate_tiled(&mut want8, &a, &b8, m, k, n);
                let mut want16 = init.clone();
                crate::kernels::accumulate_tiled(&mut want16, &a, &b16, m, k, n);
                for (name, pair8, row8, dense8, pair16, row16, dense16) in &level_kernels {
                    let mut got = init.clone();
                    accumulate_rows(&mut got, &a, &b8, m, k, n, *pair8, *row8, *dense8);
                    assert_eq!(got, want8, "{name} i8 diverged at {m}x{k}x{n} z={zero_frac}");
                    let mut got = init.clone();
                    accumulate_rows(&mut got, &a, &b16, m, k, n, *pair16, *row16, *dense16);
                    assert_eq!(got, want16, "{name} i16 diverged at {m}x{k}x{n} z={zero_frac}");
                }
            }
        }
    }
}
