//! Symmetric per-tensor `i8` quantized tensors.

use tensor::{stats, Shape, Tensor};

/// Number of positive quantization levels for signed 8-bit symmetric
/// quantization (`[-127, 127]`; -128 is unused to keep the grid symmetric).
pub const QMAX: i32 = 127;

/// A symmetric, per-tensor quantized `i8` tensor.
///
/// `value ≈ data[i] * scale`. The scale maps the tensor's absolute maximum
/// to [`QMAX`], the standard symmetric scheme the paper's "simple dynamic
/// quantization with 8-bit activation and weight" uses (§III-B).
///
/// # Example
///
/// ```
/// use tensor::Tensor;
/// use quant::QTensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 0.0], &[3])?;
/// let q = QTensor::quantize_dynamic(&x);
/// assert_eq!(q.data()[1], -127); // abs-max maps to -127
/// assert_eq!(q.data()[2], 0);
/// # Ok::<(), tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    data: Vec<i8>,
    scale: f32,
}

impl QTensor {
    /// Quantizes `x` with a scale derived from its own absolute maximum
    /// (dynamic quantization). An all-zero tensor gets scale 1.0.
    pub fn quantize_dynamic(x: &Tensor) -> Self {
        let amax = stats::abs_max(x.as_slice());
        let scale = if amax == 0.0 { 1.0 } else { amax / QMAX as f32 };
        Self::quantize_with_scale(x, scale)
    }

    /// Quantizes `x` with an externally calibrated `scale`
    /// (static quantization). Values beyond `scale * QMAX` saturate.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn quantize_with_scale(x: &Tensor, scale: f32) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let inv = 1.0 / scale;
        let data = x
            .as_slice()
            .iter()
            .map(|&v| {
                let q = (v * inv).round();
                q.clamp(-(QMAX as f32), QMAX as f32) as i8
            })
            .collect();
        QTensor { shape: x.shape().clone(), data, scale }
    }

    /// Builds a quantized tensor directly from integer data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_parts(data: Vec<i8>, dims: &[usize], scale: f32) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(data.len(), shape.volume(), "data length must match shape");
        QTensor { shape, data, scale }
    }

    /// The quantization scale (`f32` value represented by one level).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The quantized levels, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Exact dequantization back to `f32`.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, self.shape.dims()).expect("shape invariant")
    }

    /// Re-quantizes this tensor onto a different scale grid.
    ///
    /// The Ditto Encoding Unit subtracts the previous step's activation from
    /// the current step's; for the subtraction to be meaningful both
    /// operands must share a scale, so the previous tensor is re-quantized
    /// onto the current scale first (exact in f32, then rounded).
    pub fn requantize(&self, scale: f32) -> QTensor {
        if scale == self.scale {
            return self.clone();
        }
        QTensor::quantize_with_scale(&self.dequantize(), scale)
    }

    /// Element-wise integer difference `self - prev`, producing `i16` values
    /// (two i8 operands can differ by up to 254 levels).
    ///
    /// # Panics
    ///
    /// Panics if shapes or scales differ — callers must [`requantize`]
    /// first. Scale agreement is what makes the difference exact.
    ///
    /// [`requantize`]: QTensor::requantize
    pub fn temporal_delta(&self, prev: &QTensor) -> Vec<i16> {
        assert_eq!(self.shape, prev.shape, "delta requires equal shapes");
        assert!(
            (self.scale - prev.scale).abs() <= f32::EPSILON * self.scale.abs(),
            "delta requires equal scales; requantize first"
        );
        self.data.iter().zip(&prev.data).map(|(&a, &b)| a as i16 - b as i16).collect()
    }

    /// Row-wise spatial differences along axis 0 of a rank-2 view:
    /// row 0 is kept verbatim ("base row"), row `r>0` becomes
    /// `row_r − row_{r−1}`. This is the Diffy-style spatial difference the
    /// paper extends to FC and attention layers (§III-B).
    ///
    /// Returns `(base_row, deltas)` where `deltas` covers rows `1..`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn spatial_delta_rows(&self) -> (Vec<i8>, Vec<i16>) {
        assert_eq!(self.shape.rank(), 2, "spatial deltas need a rank-2 tensor");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let base = self.data[..cols].to_vec();
        let mut deltas = Vec::with_capacity(cols * rows.saturating_sub(1));
        for r in 1..rows {
            for c in 0..cols {
                deltas.push(self.data[r * cols + c] as i16 - self.data[(r - 1) * cols + c] as i16);
            }
        }
        (base, deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_quant_maps_absmax_to_qmax() {
        let x = Tensor::from_vec(vec![2.0, -4.0, 1.0], &[3]).unwrap();
        let q = QTensor::quantize_dynamic(&x);
        assert_eq!(q.data(), &[64, -127, 32]);
        assert!((q.scale() - 4.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let q = QTensor::quantize_dynamic(&Tensor::zeros(&[4]));
        assert!(q.data().iter().all(|&v| v == 0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn dequantize_error_bounded() {
        let x = Tensor::from_vec(vec![0.3, -1.7, 0.9, 1.701], &[4]).unwrap();
        let q = QTensor::quantize_dynamic(&x);
        let y = q.dequantize();
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn static_scale_saturates() {
        let x = Tensor::from_vec(vec![100.0, -100.0], &[2]).unwrap();
        let q = QTensor::quantize_with_scale(&x, 0.5);
        assert_eq!(q.data(), &[127, -127]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn bad_scale_panics() {
        QTensor::quantize_with_scale(&Tensor::zeros(&[1]), 0.0);
    }

    #[test]
    fn requantize_roundtrip_same_scale_is_identity() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let q = QTensor::quantize_dynamic(&x);
        let r = q.requantize(q.scale());
        assert_eq!(q, r);
    }

    #[test]
    fn requantize_changes_grid() {
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let q = QTensor::quantize_with_scale(&x, 1.0 / 127.0);
        let r = q.requantize(2.0 / 127.0);
        assert_eq!(r.data(), &[64, -64]);
    }

    #[test]
    fn temporal_delta_exact() {
        let a = QTensor::from_parts(vec![10, -20, 127], &[3], 0.1);
        let b = QTensor::from_parts(vec![12, -20, -127], &[3], 0.1);
        let d = a.temporal_delta(&b);
        assert_eq!(d, vec![-2, 0, 254]);
    }

    #[test]
    #[should_panic(expected = "equal scales")]
    fn temporal_delta_scale_mismatch_panics() {
        let a = QTensor::from_parts(vec![0], &[1], 0.1);
        let b = QTensor::from_parts(vec![0], &[1], 0.2);
        a.temporal_delta(&b);
    }

    #[test]
    fn spatial_delta_rows_reconstructs() {
        let q = QTensor::from_parts(vec![1, 2, 3, 5, 3, 1], &[3, 2], 1.0);
        let (base, deltas) = q.spatial_delta_rows();
        assert_eq!(base, vec![1, 2]);
        assert_eq!(deltas, vec![2, 3, 0, -4]);
        // Reconstruct row 2: base + d1 + d2.
        assert_eq!(base[0] as i16 + deltas[0] + deltas[2], 3);
        assert_eq!(base[1] as i16 + deltas[1] + deltas[3], 1);
    }

    #[test]
    fn spatial_delta_single_row() {
        let q = QTensor::from_parts(vec![7, 8], &[1, 2], 1.0);
        let (base, deltas) = q.spatial_delta_rows();
        assert_eq!(base, vec![7, 8]);
        assert!(deltas.is_empty());
    }
}
