//! Bit-width requirement classification (§III-B, Fig. 5).
//!
//! The paper defines the *bit-width requirement* as the minimum number of
//! bits needed to represent a quantized value, and buckets data elements
//! into **zero**, **≤4-bit** and **over-4-bit**. The Ditto hardware maps the
//! first two buckets onto single 4-bit multipliers and the third onto pairs
//! of 4-bit multipliers with shifters (8-bit path). Differences of two
//! signed 8-bit values can reach ±254; those rare cases are classified
//! [`BitWidthClass::Over8`] and cost two 8-bit operations in the models.

use ratio::u64_ratio;

/// Bit-width bucket of a single quantized value or temporal difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitWidthClass {
    /// Exactly zero — skipped entirely by the Encoding Unit.
    Zero,
    /// Fits in a signed 4-bit value (`-8..=7`) — one 4-bit multiplier.
    Low4,
    /// Fits in a signed 8-bit value — two paired 4-bit multipliers + shift.
    Full8,
    /// Exceeds 8 bits (only possible for differences, up to ±254) —
    /// processed as two sequential 8-bit operations.
    Over8,
}

impl BitWidthClass {
    /// Classifies a value in the `i16` difference domain.
    pub fn of(v: i16) -> Self {
        if v == 0 {
            BitWidthClass::Zero
        } else if (-8..=7).contains(&v) {
            BitWidthClass::Low4
        } else if (-128..=127).contains(&v) {
            BitWidthClass::Full8
        } else {
            BitWidthClass::Over8
        }
    }

    /// Classifies an original (non-difference) 8-bit activation.
    pub fn of_i8(v: i8) -> Self {
        Self::of(v as i16)
    }

    /// Effective multiplier issue slots on the Ditto Compute Unit:
    /// zero costs 0, 4-bit costs 1, 8-bit costs 2 (high+low nibble),
    /// over-8-bit costs 4 (two 8-bit passes).
    pub fn lane_cost(self) -> u64 {
        match self {
            BitWidthClass::Zero => 0,
            BitWidthClass::Low4 => 1,
            BitWidthClass::Full8 => 2,
            BitWidthClass::Over8 => 4,
        }
    }

    /// Activation bit-width used for BOPs accounting (§III-B uses
    /// `BOPs = bits_act × bits_weight` per MAC).
    pub fn bops_bits(self) -> u64 {
        match self {
            BitWidthClass::Zero => 0,
            BitWidthClass::Low4 => 4,
            BitWidthClass::Full8 => 8,
            BitWidthClass::Over8 => 16,
        }
    }
}

/// Histogram of bit-width classes over a stream of values.
///
/// This is the per-layer statistic the Encoding Unit produces and everything
/// downstream (BOPs model, cycle model, Fig. 5) consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitWidthHistogram {
    /// Count of exactly-zero values.
    pub zero: u64,
    /// Count of values needing ≤4 bits (excluding zero).
    pub low4: u64,
    /// Count of values needing 5–8 bits.
    pub full8: u64,
    /// Count of values needing more than 8 bits (differences only).
    pub over8: u64,
}

impl BitWidthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from `i16` difference values.
    pub fn from_deltas(deltas: &[i16]) -> Self {
        let mut h = Self::default();
        for &d in deltas {
            h.push(BitWidthClass::of(d));
        }
        h
    }

    /// Builds a histogram from original `i8` activations.
    pub fn from_activations(acts: &[i8]) -> Self {
        let mut h = Self::default();
        for &a in acts {
            h.push(BitWidthClass::of_i8(a));
        }
        h
    }

    /// Adds one classified value.
    pub fn push(&mut self, class: BitWidthClass) {
        match class {
            BitWidthClass::Zero => self.zero += 1,
            BitWidthClass::Low4 => self.low4 += 1,
            BitWidthClass::Full8 => self.full8 += 1,
            BitWidthClass::Over8 => self.over8 += 1,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &BitWidthHistogram) {
        self.zero += other.zero;
        self.low4 += other.low4;
        self.full8 += other.full8;
        self.over8 += other.over8;
    }

    /// Total number of classified values.
    pub fn total(&self) -> u64 {
        self.zero + self.low4 + self.full8 + self.over8
    }

    /// Fraction of zero values (Fig. 5's "Zero" band).
    pub fn zero_ratio(&self) -> f64 {
        u64_ratio(self.zero, self.total())
    }

    /// Fraction representable in ≤4 bits *including* zeros (the paper's
    /// "96.01% require half bit-width" statistic counts zero + 4-bit).
    pub fn le4_ratio(&self) -> f64 {
        u64_ratio(self.zero + self.low4, self.total())
    }

    /// Fraction of non-zero ≤4-bit values (Fig. 5's "4-bit" band).
    pub fn low4_ratio(&self) -> f64 {
        u64_ratio(self.low4, self.total())
    }

    /// Fraction requiring more than 4 bits (Fig. 5's "Over 4-bit" band).
    pub fn over4_ratio(&self) -> f64 {
        u64_ratio(self.full8 + self.over8, self.total())
    }

    /// Total multiplier lane slots needed on the Ditto Compute Unit.
    pub fn lane_cost(&self) -> u64 {
        self.low4 + 2 * self.full8 + 4 * self.over8
    }
}

/// Tiny ratio helper kept dependency-free.
mod ratio {
    /// `a / b` as `f64`, `0.0` when `b == 0`.
    pub fn u64_ratio(a: u64, b: u64) -> f64 {
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(BitWidthClass::of(0), BitWidthClass::Zero);
        assert_eq!(BitWidthClass::of(7), BitWidthClass::Low4);
        assert_eq!(BitWidthClass::of(-8), BitWidthClass::Low4);
        assert_eq!(BitWidthClass::of(8), BitWidthClass::Full8);
        assert_eq!(BitWidthClass::of(-9), BitWidthClass::Full8);
        assert_eq!(BitWidthClass::of(127), BitWidthClass::Full8);
        assert_eq!(BitWidthClass::of(-128), BitWidthClass::Full8);
        assert_eq!(BitWidthClass::of(128), BitWidthClass::Over8);
        assert_eq!(BitWidthClass::of(-254), BitWidthClass::Over8);
    }

    #[test]
    fn lane_and_bops_costs() {
        assert_eq!(BitWidthClass::Zero.lane_cost(), 0);
        assert_eq!(BitWidthClass::Low4.lane_cost(), 1);
        assert_eq!(BitWidthClass::Full8.lane_cost(), 2);
        assert_eq!(BitWidthClass::Over8.lane_cost(), 4);
        assert_eq!(BitWidthClass::Low4.bops_bits(), 4);
        assert_eq!(BitWidthClass::Full8.bops_bits(), 8);
    }

    #[test]
    fn histogram_from_deltas() {
        let h = BitWidthHistogram::from_deltas(&[0, 0, 3, -8, 100, 200]);
        assert_eq!(h.zero, 2);
        assert_eq!(h.low4, 2);
        assert_eq!(h.full8, 1);
        assert_eq!(h.over8, 1);
        assert_eq!(h.total(), 6);
        assert!((h.zero_ratio() - 2.0 / 6.0).abs() < 1e-12);
        assert!((h.le4_ratio() - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.over4_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = BitWidthHistogram::from_deltas(&[0, 5]);
        let b = BitWidthHistogram::from_deltas(&[100]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.full8, 1);
    }

    #[test]
    fn empty_histogram_ratios_are_zero() {
        let h = BitWidthHistogram::new();
        assert_eq!(h.zero_ratio(), 0.0);
        assert_eq!(h.le4_ratio(), 0.0);
    }

    #[test]
    fn lane_cost_weights() {
        let h = BitWidthHistogram { zero: 10, low4: 4, full8: 3, over8: 1 };
        assert_eq!(h.lane_cost(), 4 + 6 + 4);
    }

    #[test]
    fn activation_histogram_counts_zeros() {
        let h = BitWidthHistogram::from_activations(&[0, 1, -128, 64]);
        assert_eq!(h.zero, 1);
        assert_eq!(h.low4, 1);
        assert_eq!(h.full8, 2);
    }
}
