//! Offline calibration with time-step clustering (Q-Diffusion-style).
//!
//! §II / §VI-A: because activation ranges drift across the reverse process,
//! a single static scale is inaccurate. Q-Diffusion and PTQ-D therefore
//! calibrate *per time-step cluster*: steps with similar value ranges share
//! a scaling factor. [`Calibrator`] records per-(layer, step) absolute
//! maxima during a calibration run; [`Calibrator::finish`] clusters each
//! layer's steps into contiguous range-homogeneous clusters and emits a
//! [`CalibrationTable`].

use crate::qtensor::QMAX;
use std::collections::HashMap;

/// Records per-layer, per-step absolute maxima during calibration runs.
#[derive(Debug, Clone)]
pub struct Calibrator {
    steps: usize,
    /// `(layer, step) → abs-max` over all observed tensors.
    absmax: HashMap<(usize, usize), f32>,
}

impl Calibrator {
    /// Creates a calibrator for a schedule with `steps` time steps.
    pub fn new(steps: usize) -> Self {
        Calibrator { steps, absmax: HashMap::new() }
    }

    /// Observes one activation tensor's absolute maximum for `layer` at
    /// time-step index `step`. Repeated observations keep the running max.
    pub fn observe(&mut self, layer: usize, step: usize, abs_max: f32) {
        let e = self.absmax.entry((layer, step)).or_insert(0.0);
        if abs_max > *e {
            *e = abs_max;
        }
    }

    /// Number of time steps this calibrator covers.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// TDQ-style finish: one scale *per observed time step* (the "temporal
    /// dynamic quantization" of So et al., which the paper cites as
    /// synergistic with Ditto). Maximal range fidelity, but every step is
    /// its own grid — temporal difference processing must re-quantize the
    /// previous step's tensor at every boundary (see the quantization
    /// ablation bench).
    pub fn finish_per_step(self) -> CalibrationTable {
        let steps = self.steps;
        let mut layers: HashMap<usize, Vec<(usize, f32)>> = HashMap::new();
        for (&(layer, step), &amax) in &self.absmax {
            layers
                .entry(layer)
                .or_default()
                .push((step, amax.max(f32::MIN_POSITIVE) / QMAX as f32));
        }
        let mut table = HashMap::new();
        for (layer, mut obs) in layers {
            obs.sort_by_key(|&(s, _)| s);
            table.insert(layer, obs);
        }
        CalibrationTable { steps, table }
    }

    /// Clusters each layer's time steps into at most `clusters` contiguous
    /// clusters and derives one symmetric scale per cluster.
    ///
    /// Clustering is a 1-D segmented grouping on the abs-max curve: steps
    /// are scanned in order and a new cluster starts whenever the running
    /// cluster's max/min abs-max ratio would exceed 1.5× (value-range based
    /// clustering as in Q-Diffusion), capped at `clusters` segments.
    pub fn finish(self, clusters: usize) -> CalibrationTable {
        let clusters = clusters.max(1);
        let mut layers: HashMap<usize, Vec<(usize, f32)>> = HashMap::new();
        for (&(layer, step), &amax) in &self.absmax {
            layers.entry(layer).or_default().push((step, amax));
        }
        let mut table = HashMap::new();
        for (layer, mut obs) in layers {
            obs.sort_by_key(|&(s, _)| s);
            let mut scales: Vec<(usize, f32)> = Vec::new(); // (first_step, scale)
            let mut seg_start = 0usize;
            let mut seg_min = f32::INFINITY;
            let mut seg_max: f32 = 0.0;
            let mut segments_used = 1usize;
            for (i, &(_, amax)) in obs.iter().enumerate() {
                let cand_min = seg_min.min(amax.max(f32::MIN_POSITIVE));
                let cand_max = seg_max.max(amax);
                let over_ratio = cand_max / cand_min > 1.5;
                if i > seg_start && over_ratio && segments_used < clusters {
                    // Close the running segment.
                    let scale = seg_max.max(f32::MIN_POSITIVE) / QMAX as f32;
                    scales.push((obs[seg_start].0, scale));
                    seg_start = i;
                    seg_min = amax.max(f32::MIN_POSITIVE);
                    seg_max = amax;
                    segments_used += 1;
                } else {
                    seg_min = cand_min;
                    seg_max = cand_max;
                }
            }
            if seg_start < obs.len() {
                let scale = seg_max.max(f32::MIN_POSITIVE) / QMAX as f32;
                scales.push((obs[seg_start].0, scale));
            }
            table.insert(layer, scales);
        }
        CalibrationTable { steps: self.steps, table }
    }
}

/// Calibrated scales, keyed by layer and resolved by time-step cluster.
#[derive(Debug, Clone, Default)]
pub struct CalibrationTable {
    steps: usize,
    /// Per layer: sorted `(first_step_of_cluster, scale)` segments.
    table: HashMap<usize, Vec<(usize, f32)>>,
}

impl CalibrationTable {
    /// Scale for `layer` at `step`, or `None` if the layer was never
    /// calibrated.
    pub fn scale_for(&self, layer: usize, step: usize) -> Option<f32> {
        let segs = self.table.get(&layer)?;
        let mut scale = segs.first()?.1;
        for &(first, s) in segs {
            if step >= first {
                scale = s;
            } else {
                break;
            }
        }
        Some(scale)
    }

    /// Number of clusters a layer's schedule was split into.
    pub fn cluster_count(&self, layer: usize) -> usize {
        self.table.get(&layer).map_or(0, Vec::len)
    }

    /// Number of time steps covered.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of calibrated layers.
    pub fn layer_count(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_uses_global_max() {
        let mut c = Calibrator::new(4);
        for step in 0..4 {
            c.observe(0, step, 1.0 + step as f32);
        }
        let t = c.finish(1);
        assert_eq!(t.cluster_count(0), 1);
        let s = t.scale_for(0, 0).unwrap();
        assert!((s - 4.0 / QMAX as f32).abs() < 1e-7);
    }

    #[test]
    fn range_drift_splits_clusters() {
        let mut c = Calibrator::new(8);
        // First half small range, second half 10x larger.
        for step in 0..4 {
            c.observe(0, step, 1.0);
        }
        for step in 4..8 {
            c.observe(0, step, 10.0);
        }
        let t = c.finish(4);
        assert!(t.cluster_count(0) >= 2, "expected a split, got {}", t.cluster_count(0));
        let early = t.scale_for(0, 0).unwrap();
        let late = t.scale_for(0, 7).unwrap();
        assert!(late > early * 5.0, "late scale should track the larger range");
    }

    #[test]
    fn cluster_cap_respected() {
        let mut c = Calibrator::new(16);
        for step in 0..16 {
            c.observe(0, step, (step as f32 + 1.0).powi(2));
        }
        let t = c.finish(3);
        assert!(t.cluster_count(0) <= 3);
    }

    #[test]
    fn unknown_layer_is_none() {
        let c = Calibrator::new(2);
        let t = c.finish(2);
        assert!(t.scale_for(0, 0).is_none());
        assert_eq!(t.layer_count(), 0);
    }

    #[test]
    fn repeated_observe_keeps_max() {
        let mut c = Calibrator::new(1);
        c.observe(0, 0, 1.0);
        c.observe(0, 0, 3.0);
        c.observe(0, 0, 2.0);
        let t = c.finish(1);
        assert!((t.scale_for(0, 0).unwrap() - 3.0 / QMAX as f32).abs() < 1e-7);
    }

    #[test]
    fn per_step_table_tracks_every_step() {
        let mut c = Calibrator::new(4);
        for step in 0..4 {
            c.observe(0, step, 1.0 + step as f32);
        }
        let t = c.finish_per_step();
        assert_eq!(t.cluster_count(0), 4);
        for step in 0..4 {
            let s = t.scale_for(0, step).unwrap();
            assert!((s - (1.0 + step as f32) / QMAX as f32).abs() < 1e-7, "step {step}");
        }
    }

    #[test]
    fn steps_metadata_preserved() {
        let c = Calibrator::new(50);
        assert_eq!(c.steps(), 50);
        assert_eq!(c.finish(2).steps(), 50);
    }
}
