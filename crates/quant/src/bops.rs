//! Bit Operations (BOPs) accounting — the metric behind Fig. 5 and Fig. 6.
//!
//! Following the paper (which follows UNIQ and Q-Diffusion), one
//! multiply-accumulate between an `a`-bit activation and a `w`-bit weight
//! costs `a × w` BOPs. Temporal/spatial difference processing reduces BOPs
//! by shrinking `a` per element (0, 4, 8 or 16 bits) while `w` stays 8-bit.

use crate::bitwidth::BitWidthHistogram;

/// BOPs model for A?W8 layers.
///
/// # Example
///
/// ```
/// use quant::{BopsModel, BitWidthHistogram};
///
/// let m = BopsModel::a8w8();
/// // 10 elements, each reused across 3 output features → 30 MACs dense.
/// let dense = m.dense_bops(30);
/// let h = BitWidthHistogram { zero: 5, low4: 4, full8: 1, over8: 0 };
/// let diff = m.histogram_bops(&h, 3);
/// assert!(diff < dense);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BopsModel {
    /// Weight bit-width (8 throughout the paper).
    pub weight_bits: u64,
    /// Full activation bit-width (8 throughout the paper).
    pub act_bits: u64,
}

impl BopsModel {
    /// The paper's A8W8 configuration.
    pub fn a8w8() -> Self {
        BopsModel { weight_bits: 8, act_bits: 8 }
    }

    /// BOPs of executing `macs` dense full-bit-width MACs.
    pub fn dense_bops(&self, macs: u64) -> u64 {
        macs * self.act_bits * self.weight_bits
    }

    /// BOPs of difference processing described by a per-element bit-width
    /// histogram, where each classified element participates in `reuse`
    /// MACs (e.g. the output-feature count for an FC layer, or
    /// `C_out` for an im2col convolution row element).
    pub fn histogram_bops(&self, h: &BitWidthHistogram, reuse: u64) -> u64 {
        let per_element_bits = h.low4 * 4 + h.full8 * 8 + h.over8 * 16;
        per_element_bits * self.weight_bits * reuse
    }

    /// Relative BOPs of a histogram versus dense processing of the same
    /// element count (`1.0` = no saving). Returns `0.0` for empty input.
    pub fn relative_bops(&self, h: &BitWidthHistogram) -> f64 {
        let total = h.total();
        if total == 0 {
            return 0.0;
        }
        let diff = (h.low4 * 4 + h.full8 * 8 + h.over8 * 16) * self.weight_bits;
        let dense = total * self.act_bits * self.weight_bits;
        diff as f64 / dense as f64
    }
}

impl Default for BopsModel {
    fn default() -> Self {
        BopsModel::a8w8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_bops_scale() {
        let m = BopsModel::a8w8();
        assert_eq!(m.dense_bops(1), 64);
        assert_eq!(m.dense_bops(100), 6400);
    }

    #[test]
    fn histogram_bops_counts_bits() {
        let m = BopsModel::a8w8();
        let h = BitWidthHistogram { zero: 10, low4: 2, full8: 1, over8: 1 };
        // (2*4 + 1*8 + 1*16) * 8 * reuse.
        assert_eq!(m.histogram_bops(&h, 1), 32 * 8);
        assert_eq!(m.histogram_bops(&h, 5), 32 * 8 * 5);
    }

    #[test]
    fn all_zero_histogram_is_free() {
        let m = BopsModel::a8w8();
        let h = BitWidthHistogram { zero: 100, ..Default::default() };
        assert_eq!(m.histogram_bops(&h, 7), 0);
        assert_eq!(m.relative_bops(&h), 0.0);
    }

    #[test]
    fn relative_bops_dense_equivalent() {
        let m = BopsModel::a8w8();
        let h = BitWidthHistogram { zero: 0, low4: 0, full8: 10, over8: 0 };
        assert_eq!(m.relative_bops(&h), 1.0);
    }

    #[test]
    fn relative_bops_half_for_low4() {
        let m = BopsModel::a8w8();
        let h = BitWidthHistogram { zero: 0, low4: 10, full8: 0, over8: 0 };
        assert_eq!(m.relative_bops(&h), 0.5);
    }

    #[test]
    fn relative_bops_empty_is_zero() {
        let m = BopsModel::a8w8();
        assert_eq!(m.relative_bops(&BitWidthHistogram::new()), 0.0);
    }
}
