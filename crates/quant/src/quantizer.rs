//! Quantization policies: dynamic and calibrated static.

use crate::calib::CalibrationTable;
use crate::qtensor::QTensor;
use tensor::Tensor;

/// Which quantization policy a model uses (§VI-A: Q-Diffusion-style static
/// calibration for the UNet models, dynamic quantization for DiT/Latte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// Per-call abs-max scaling.
    Dynamic,
    /// Scales looked up from an offline calibration table, keyed by layer
    /// and time-step cluster.
    Static,
}

/// A quantizer that turns `f32` layer inputs into [`QTensor`]s according to
/// a [`QuantMode`].
///
/// # Example
///
/// ```
/// use quant::{Quantizer, QuantMode};
/// use tensor::Tensor;
///
/// let q = Quantizer::dynamic();
/// let x = Tensor::from_vec(vec![1.0, -0.5], &[2])?;
/// let qx = q.quantize(&x, 0, 0);
/// assert_eq!(qx.data()[0], 127);
/// # Ok::<(), tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Quantizer {
    mode: QuantMode,
    table: Option<CalibrationTable>,
}

impl Quantizer {
    /// A dynamic quantizer (no calibration needed).
    pub fn dynamic() -> Self {
        Quantizer { mode: QuantMode::Dynamic, table: None }
    }

    /// A static quantizer backed by an offline calibration table.
    pub fn with_table(table: CalibrationTable) -> Self {
        Quantizer { mode: QuantMode::Static, table: Some(table) }
    }

    /// The active policy.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// The calibration table, if static.
    pub fn table(&self) -> Option<&CalibrationTable> {
        self.table.as_ref()
    }

    /// Quantizes layer `layer`'s input at time-step index `step`.
    ///
    /// Dynamic mode ignores `layer`/`step`. Static mode looks up the
    /// calibrated scale; a layer/step never seen in calibration falls back
    /// to dynamic scaling (the same graceful fallback Q-Diffusion's
    /// implementation applies for uncovered shapes).
    pub fn quantize(&self, x: &Tensor, layer: usize, step: usize) -> QTensor {
        match self.mode {
            QuantMode::Dynamic => QTensor::quantize_dynamic(x),
            QuantMode::Static => {
                let scale = self.table.as_ref().and_then(|t| t.scale_for(layer, step));
                match scale {
                    Some(s) => QTensor::quantize_with_scale(x, s),
                    None => QTensor::quantize_dynamic(x),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibrator;

    #[test]
    fn dynamic_ignores_layer_step() {
        let q = Quantizer::dynamic();
        let x = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        let a = q.quantize(&x, 0, 0);
        let b = q.quantize(&x, 9, 9);
        assert_eq!(a, b);
        assert_eq!(q.mode(), QuantMode::Dynamic);
    }

    #[test]
    fn static_uses_calibrated_scale() {
        let mut cal = Calibrator::new(4);
        // Layer 0 sees range 2.0 at every step.
        for step in 0..8 {
            cal.observe(0, step, 2.0);
        }
        let table = cal.finish(2);
        let q = Quantizer::with_table(table);
        let x = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let qx = q.quantize(&x, 0, 3);
        // Scale maps 2.0 → 127, so 1.0 → ~64.
        assert_eq!(qx.data()[0], 64);
    }

    #[test]
    fn static_falls_back_to_dynamic_for_unknown_layer() {
        let mut cal = Calibrator::new(1);
        cal.observe(0, 0, 1.0);
        let q = Quantizer::with_table(cal.finish(1));
        let x = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let qx = q.quantize(&x, 99, 0);
        assert_eq!(qx.data()[0], 127); // dynamic abs-max behaviour
    }
}
