//! Property tests for the quantization stack: exactness of difference
//! processing in the integer domain, quantization error bounds, and
//! histogram invariants.

use proptest::prelude::*;
use quant::kernels::{delta_matmul_update, int_matmul, widen};
use quant::{BitWidthClass, BitWidthHistogram, BopsModel, QTensor};
use tensor::backend::{available_simd_levels, hw_simd_level, set_simd_level, SimdLevel};
use tensor::{KernelBackend, Tensor};

/// Backend × SIMD-level configurations: the portable backends, then the
/// `simd` backend once per hardware-supported level (the sweep the
/// `DITTO_SIMD_LEVEL` override makes CI-testable). Level `none` is
/// included deliberately — it exercises the graceful fallback from the
/// `simd` dispatchers to the tiled loops.
fn backend_level_matrix() -> Vec<(KernelBackend, Option<SimdLevel>)> {
    let mut configs = vec![(KernelBackend::Scalar, None), (KernelBackend::Tiled, None)];
    for level in available_simd_levels() {
        configs.push((KernelBackend::Simd, Some(level)));
    }
    configs
}

fn i8_vec(n: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(any::<i8>().prop_map(|v| if v == -128 { -127 } else { v }), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dense integer execution and delta-update execution are bit-identical
    /// for arbitrary previous/current activations (the §IV-A equivalence).
    #[test]
    fn delta_processing_bit_exact(
        m in 1usize..4, k in 1usize..6, n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = tensor::Rng::seed_from(seed);
        let prev: Vec<i8> = (0..m * k).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let curr: Vec<i8> = (0..m * k).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let w: Vec<i8> = (0..k * n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let delta: Vec<i16> = curr.iter().zip(&prev).map(|(&c, &p)| c as i16 - p as i16).collect();
        let out_prev = int_matmul(&widen(&prev), &w, m, k, n);
        let dense = int_matmul(&widen(&curr), &w, m, k, n);
        let via = delta_matmul_update(&out_prev, &delta, &w, m, k, n);
        prop_assert_eq!(dense, via);
    }

    /// The tiled kernels are bit-identical to the scalar reference loops on
    /// arbitrary shapes and sparsity (larger shapes than the exactness test
    /// above, straddling the register-tile boundary).
    #[test]
    fn tiled_kernels_match_reference(
        m in 1usize..12, k in 1usize..24, n in 1usize..12,
        zero_pct in 0u32..100, seed in any::<u64>(),
    ) {
        let mut rng = tensor::Rng::seed_from(seed);
        let a: Vec<i16> = (0..m * k)
            .map(|_| {
                if rng.next_below(100) < zero_pct as usize { 0 }
                else { rng.next_below(511) as i16 - 255 }
            })
            .collect();
        let w: Vec<i8> = (0..k * n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        prop_assert_eq!(
            int_matmul(&a, &w, m, k, n),
            quant::kernels::reference::int_matmul(&a, &w, m, k, n)
        );
        let prev: Vec<i32> =
            (0..m * n).map(|_| rng.next_below(1 << 16) as i32 - (1 << 15)).collect();
        prop_assert_eq!(
            delta_matmul_update(&prev, &a, &w, m, k, n),
            quant::kernels::reference::delta_matmul_update(&prev, &a, &w, m, k, n)
        );
    }

    /// Every kernel × every available backend × every available SIMD
    /// level is bit-identical to the scalar reference loops — the
    /// cross-backend matrix behind the pluggable kernel-backend layer
    /// (`tensor::backend`). Covers the dense matmul (`zero_pct == 0`
    /// drives every row through the dense-row register kernels), the
    /// fused delta update, and both attention kernels, at
    /// delta-realistic sparsities, on shapes straddling the 8-lane
    /// boundary (`n < 8`, odd `n`, odd `k` for the pair fold).
    #[test]
    fn backend_matrix_matches_reference(
        m in 1usize..14, k in 1usize..40, n in 1usize..24,
        zero_pct in 0u32..100, seed in any::<u64>(),
    ) {
        let mut rng = tensor::Rng::seed_from(seed);
        let mut sparse_i16 = |len: usize| -> Vec<i16> {
            (0..len)
                .map(|_| {
                    if rng.next_below(100) < zero_pct as usize { 0 }
                    else { rng.next_below(511) as i16 - 255 }
                })
                .collect()
        };
        let a = sparse_i16(m * k);
        let dq = sparse_i16(m * k);
        let k_t = sparse_i16(k * n);
        let dk_t = sparse_i16(k * n);
        let w: Vec<i8> = (0..k * n).map(|_| (rng.next_below(255) as i32 - 127) as i8).collect();
        let prev: Vec<i32> =
            (0..m * n).map(|_| rng.next_below(1 << 16) as i32 - (1 << 15)).collect();
        let want_mm = quant::kernels::reference::int_matmul(&a, &w, m, k, n);
        let want_delta = quant::kernels::reference::delta_matmul_update(&prev, &a, &w, m, k, n);
        let want_scores = quant::kernels::int_scores_with(KernelBackend::Scalar, &a, &k_t, m, k, n);
        let want_attn = quant::kernels::attention_delta_scores_with(
            KernelBackend::Scalar, &prev, &a, &dq, &k_t, &dk_t, m, k, n,
        );
        for (backend, level) in backend_level_matrix() {
            if let Some(level) = level {
                set_simd_level(level).unwrap();
            }
            prop_assert_eq!(
                &quant::kernels::int_matmul_with(backend, &a, &w, m, k, n),
                &want_mm, "int_matmul diverged on {} at {:?}", backend, level
            );
            prop_assert_eq!(
                &quant::kernels::delta_matmul_update_with(backend, &prev, &a, &w, m, k, n),
                &want_delta, "delta_matmul_update diverged on {} at {:?}", backend, level
            );
            prop_assert_eq!(
                &quant::kernels::int_scores_with(backend, &a, &k_t, m, k, n),
                &want_scores, "int_scores diverged on {} at {:?}", backend, level
            );
            prop_assert_eq!(
                &quant::kernels::attention_delta_scores_with(
                    backend, &prev, &a, &dq, &k_t, &dk_t, m, k, n,
                ),
                &want_attn, "attention_delta_scores diverged on {} at {:?}", backend, level
            );
        }
        set_simd_level(hw_simd_level()).unwrap();
    }

    /// Quantize→dequantize error is bounded by half a quantization step.
    #[test]
    fn quant_error_bounded(vals in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = vals.len();
        let x = Tensor::from_vec(vals, &[n]).unwrap();
        let q = QTensor::quantize_dynamic(&x);
        let y = q.dequantize();
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-5);
        }
    }

    /// Quantization is scale-equivariant: quantizing c*x dynamically gives
    /// the same levels as quantizing x (for c > 0).
    #[test]
    fn dynamic_quant_scale_invariant(
        vals in proptest::collection::vec(-10.0f32..10.0, 1..32),
        c in 0.5f32..20.0,
    ) {
        let n = vals.len();
        let x = Tensor::from_vec(vals.clone(), &[n]).unwrap();
        let xs = Tensor::from_vec(vals.iter().map(|v| v * c).collect(), &[n]).unwrap();
        let qa = QTensor::quantize_dynamic(&x);
        let qb = QTensor::quantize_dynamic(&xs);
        for (a, b) in qa.data().iter().zip(qb.data()) {
            prop_assert!((a - b).abs() <= 1, "levels {a} vs {b}");
        }
    }

    /// Histogram buckets partition the data: counts sum to the total and
    /// every value lands in exactly the bucket its magnitude implies.
    #[test]
    fn histogram_partitions(deltas in proptest::collection::vec(-254i16..=254, 0..256)) {
        let h = BitWidthHistogram::from_deltas(&deltas);
        prop_assert_eq!(h.total(), deltas.len() as u64);
        let zero = deltas.iter().filter(|&&d| d == 0).count() as u64;
        let low4 = deltas.iter().filter(|&&d| d != 0 && (-8..=7).contains(&d)).count() as u64;
        prop_assert_eq!(h.zero, zero);
        prop_assert_eq!(h.low4, low4);
        let ratios = h.zero_ratio() + h.low4_ratio() + h.over4_ratio();
        if !deltas.is_empty() {
            prop_assert!((ratios - 1.0).abs() < 1e-9);
        }
    }

    /// BOPs of difference processing never exceed dense BOPs when no delta
    /// needs more than 8 bits.
    #[test]
    fn bops_never_worse_without_over8(deltas in proptest::collection::vec(-127i16..=127, 1..256)) {
        let h = BitWidthHistogram::from_deltas(&deltas);
        let m = BopsModel::a8w8();
        prop_assert!(m.relative_bops(&h) <= 1.0);
    }

    /// Spatial delta rows reconstruct the original tensor by prefix sums.
    #[test]
    fn spatial_delta_reconstructs(rows in 1usize..6, cols in 1usize..6, data in i8_vec(36)) {
        let need = rows * cols;
        prop_assume!(need <= data.len());
        let q = QTensor::from_parts(data[..need].to_vec(), &[rows, cols], 1.0);
        let (base, deltas) = q.spatial_delta_rows();
        let mut cur: Vec<i16> = base.iter().map(|&v| v as i16).collect();
        prop_assert_eq!(&cur[..], &q.data()[..cols].iter().map(|&v| v as i16).collect::<Vec<_>>()[..]);
        for r in 1..rows {
            for c in 0..cols {
                cur[c] += deltas[(r - 1) * cols + c];
                prop_assert_eq!(cur[c], q.data()[r * cols + c] as i16);
            }
        }
    }

    /// Lane cost is monotone in bit-width class.
    #[test]
    fn lane_cost_monotone(v in -254i16..=254) {
        let c = BitWidthClass::of(v);
        let cost = c.lane_cost();
        prop_assert!(cost <= 4);
        if v == 0 { prop_assert_eq!(cost, 0); }
        if v != 0 { prop_assert!(cost >= 1); }
    }
}
