//! A fixed-bucket log-scale histogram for latency and depth aggregates.
//!
//! The observability layer (`serve::obs`) records microsecond latencies and
//! queue depths on hot paths, so the container must be allocation-free and
//! O(1) per record: a fixed array of buckets whose widths grow
//! geometrically. Values below 8 get exact unit buckets; above that, each
//! power of two is split into 4 sub-buckets, bounding the relative
//! quantization error of any reported percentile at 25% (the width of a
//! bucket relative to its lower edge is at most 1/4).
//!
//! Percentiles are defined the way a sorted-vector oracle defines them —
//! [`LogHistogram::percentile`]`(p)` reports the bucket holding the
//! ⌈p/100·count⌉-th smallest recorded value (its inclusive upper edge), so
//! the exact order statistic always falls inside the returned bucket. The
//! property tests in `crates/core/tests/hist_props.rs` hold the histogram
//! to exactly that contract against a sorted vector.

use crate::jsonio::{ToJson, Value};

/// Exact unit buckets for values `0..8`.
const EXACT: usize = 8;
/// Sub-buckets per power of two above the exact range.
const SUBS: usize = 4;
/// Bucket count: 8 exact + 4 sub-buckets for each of the 61 octaves
/// `2^3..=2^63` (values `8..=u64::MAX`).
const BUCKETS: usize = EXACT + SUBS * 61;

/// A fixed-bucket log-scale histogram over `u64` samples.
///
/// ```
/// use ditto_core::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [3, 3, 90, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile(50.0), 3); // values < 8 are exact
/// assert_eq!(h.max(), 1_000_000);
/// assert!(h.percentile(75.0) >= 90); // bucket upper edge ≥ the sample
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// The bucket index a value lands in (shared by `record` and the oracle
/// check in the property tests).
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 3 here
    let sub = ((v >> (msb - 2)) & (SUBS as u64 - 1)) as usize;
    EXACT + (msb - 3) * SUBS + sub
}

/// The inclusive upper edge of a bucket — what percentiles report.
fn bucket_upper(i: usize) -> u64 {
    if i < EXACT {
        return i as u64;
    }
    let msb = (i - EXACT) / SUBS + 3;
    let sub = ((i - EXACT) % SUBS) as u64;
    let width = 1u64 << (msb - 2);
    let lower = (1u64 << msb) + sub * width;
    lower + (width - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. O(1), allocation-free.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`): the inclusive upper edge of
    /// the bucket holding the ⌈p/100·count⌉-th smallest sample (clamped to
    /// rank 1; `p = 100` is the bucket of the maximum). Returns 0 when
    /// empty. Exact for values below 8; otherwise within 25% (one
    /// sub-bucket) above the exact order statistic, and never above the
    /// recorded maximum's bucket edge.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard summary object every consumer (obs summaries, bench
    /// reports) embeds: `{count, mean, p50, p90, p99, max}`.
    pub fn summary_json(&self) -> Value {
        Value::Obj(vec![
            ("count".into(), self.count.to_json()),
            ("mean".into(), Value::Num(self.mean())),
            ("p50".into(), self.percentile(50.0).to_json()),
            ("p90".into(), self.percentile(90.0).to_json()),
            ("p99".into(), self.percentile(99.0).to_json()),
            ("max".into(), self.max().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 2, 3, 7, 7, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 2);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value's bucket upper edge is ≥ the value, and bucket
        // indices never decrease as values grow.
        let mut values: Vec<u64> = (0u32..64)
            .flat_map(|shift| {
                [0u64, 1, 2, 3]
                    .map(|off| (1u64 << shift).saturating_add(off << shift.saturating_sub(2)))
            })
            .collect();
        values.sort_unstable();
        let mut prev = 0;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(bucket_upper(i) >= v, "upper edge below value {v}");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentile_is_within_one_bucket_of_exact() {
        let mut h = LogHistogram::new();
        let samples: Vec<u64> = (0..1000).map(|i| (i * i * 37 + i) as u64).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &s in &samples {
            h.record(s);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1];
            let got = h.percentile(p);
            assert_eq!(
                bucket_index(got.max(exact)),
                bucket_index(exact),
                "p{p}: got {got}, exact {exact}"
            );
            assert!(got >= exact, "percentile must be an upper bound: p{p} {got} < {exact}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let (mut a, mut b, mut all) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for i in 0..500u64 {
            let v = i * 13 % 9001;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn merge_across_disjoint_bucket_ranges() {
        // `a` lives entirely in the exact unit buckets, `b` entirely in the
        // high log octaves — no bucket is touched by both, so the merge must
        // splice the distributions rather than blend them.
        let (mut a, mut b, mut all) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for v in 0..8u64 {
            a.record(v);
            all.record(v);
        }
        for i in 0..8u64 {
            let v = 1_000_000 + i * 250_000;
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
        // The low half still resolves exactly (unit buckets), the high half
        // lands above every low sample: the split point is preserved.
        assert!(a.percentile(50.0) <= 7);
        assert!(a.percentile(75.0) >= 1_000_000);

        // Merging into an empty histogram is identity in the other order.
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
        assert_eq!(empty.min(), all.min());
        assert_eq!(empty.max(), all.max());
        for p in [10.0, 90.0] {
            assert_eq!(empty.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn summary_json_has_the_stable_keys() {
        let mut h = LogHistogram::new();
        h.record(5);
        h.record(500);
        let v = h.summary_json();
        for key in ["count", "mean", "p50", "p90", "p99", "max"] {
            assert!(v.get(key).is_ok(), "missing `{key}`");
        }
        assert_eq!(v.get("count").unwrap(), &Value::Int(2));
    }
}
