//! Algorithm-level aggregate analyses: Fig. 5 (bit-width requirement),
//! Fig. 6 (BOPs), Fig. 8 (memory-access overhead of naive temporal
//! difference processing).

use quant::{BitWidthHistogram, BopsModel};

use crate::trace::{StatView, WorkloadTrace};

/// Fig. 5 bar: fraction of elements that are zero / ≤4-bit / >4-bit under
/// one processing view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitwidthBreakdown {
    /// Fraction of exact zeros.
    pub zero: f64,
    /// Fraction of non-zero values representable in 4 bits.
    pub low4: f64,
    /// Fraction requiring more than 4 bits.
    pub over4: f64,
}

impl BitwidthBreakdown {
    /// Builds a breakdown from a histogram.
    pub fn from_histogram(h: &BitWidthHistogram) -> Self {
        BitwidthBreakdown { zero: h.zero_ratio(), low4: h.low4_ratio(), over4: h.over4_ratio() }
    }
}

/// Computes the Fig. 5 breakdown of a trace under a view.
pub fn bitwidth_breakdown(trace: &WorkloadTrace, view: StatView) -> BitwidthBreakdown {
    BitwidthBreakdown::from_histogram(&trace.merged(view))
}

/// Total BOPs of one view over the whole run. The `Activation` view is the
/// original quantized model executed densely (the paper's reference bar in
/// Fig. 6a — value statistics of activations are *analysed* in Fig. 5 but
/// not *exploited* by the baseline). The temporal view bills the first
/// model call at full (dense) cost — the Ditto algorithm executes the
/// first time step with original activations (§IV-A).
pub fn total_bops(trace: &WorkloadTrace, view: StatView) -> u64 {
    let model = BopsModel::a8w8();
    let mut total = 0u64;
    for step_row in &trace.steps {
        for (meta, st) in trace.layers.iter().zip(step_row) {
            total += match view {
                StatView::Activation => model.dense_bops(meta.macs),
                StatView::Spatial => model.histogram_bops(&st.spa, meta.reuse),
                StatView::Temporal => match &st.temporal {
                    Some(hists) => hists
                        .iter()
                        .zip(&meta.subops)
                        .map(|(h, sub)| model.histogram_bops(h, sub.reuse))
                        .sum(),
                    None => model.dense_bops(meta.macs),
                },
            };
        }
    }
    total
}

/// Dense (no sparsity, full bit-width) BOPs of the whole run.
pub fn dense_bops(trace: &WorkloadTrace) -> u64 {
    BopsModel::a8w8().dense_bops(trace.macs_per_step()) * trace.step_count() as u64
}

/// Fig. 6a bar: BOPs of a view relative to dense A8W8 execution.
pub fn relative_bops(trace: &WorkloadTrace, view: StatView) -> f64 {
    let d = dense_bops(trace);
    if d == 0 {
        return 0.0;
    }
    total_bops(trace, view) as f64 / d as f64
}

/// Fig. 6b series: per-step relative BOPs of the temporal view for one
/// layer (by name), versus that layer's dense cost.
pub fn per_step_relative_bops(trace: &WorkloadTrace, layer_name: &str) -> Option<Vec<f64>> {
    let idx = trace.layers.iter().position(|l| l.name == layer_name)?;
    let meta = &trace.layers[idx];
    let model = BopsModel::a8w8();
    let dense = model.dense_bops(meta.macs) as f64;
    Some(
        trace
            .steps
            .iter()
            .map(|row| {
                let st = &row[idx];
                let b = match &st.temporal {
                    Some(hists) => hists
                        .iter()
                        .zip(&meta.subops)
                        .map(|(h, sub)| model.histogram_bops(h, sub.reuse))
                        .sum::<u64>(),
                    None => model.dense_bops(meta.macs),
                };
                b as f64 / dense
            })
            .collect(),
    )
}

/// Fig. 8 bar: total memory accesses of *naive* temporal difference
/// processing (previous input and output stored/loaded around **every**
/// linear layer — no Defo dependency bypassing) relative to
/// original-activation processing.
pub fn naive_temporal_memory_ratio(trace: &WorkloadTrace) -> f64 {
    let mut base = 0u64;
    let mut naive = 0u64;
    for meta in &trace.layers {
        base += meta.base_bytes();
        // Naive: every layer stores+loads its previous input (8-bit) and
        // previous output (partial-sum precision), boundary or not.
        naive += meta.base_bytes()
            + 2 * meta.in_bytes
            + 2 * crate::trace::LayerMeta::OUTPUT_STATE_BYTES * meta.out_bytes;
    }
    if base == 0 {
        return 0.0;
    }
    naive as f64 / base as f64
}

/// Memory accesses with Defo's static dependency bypassing (differences and
/// summations only at non-linear boundaries), relative to
/// original-activation processing. Compare with
/// [`naive_temporal_memory_ratio`] to see the bypass win.
pub fn defo_temporal_memory_ratio(trace: &WorkloadTrace) -> f64 {
    let mut base = 0u64;
    let mut with_defo = 0u64;
    for meta in &trace.layers {
        base += meta.base_bytes();
        with_defo += meta.base_bytes() + meta.temporal_extra_bytes();
    }
    if base == 0 {
        return 0.0;
    }
    with_defo as f64 / base as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{trace_model, ExecPolicy};
    use diffusion::{DiffusionModel, ModelKind, ModelScale};

    fn trace(kind: ModelKind) -> WorkloadTrace {
        let model = DiffusionModel::build(kind, ModelScale::Tiny, 31);
        trace_model(&model, 1, ExecPolicy::Dense).unwrap().0
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let t = trace(ModelKind::Ddpm);
        for view in [StatView::Activation, StatView::Spatial, StatView::Temporal] {
            let b = bitwidth_breakdown(&t, view);
            assert!((b.zero + b.low4 + b.over4 - 1.0).abs() < 1e-9, "{view:?}");
        }
    }

    #[test]
    fn temporal_bops_lowest_activation_highest() {
        // Fig. 6a's ordering: Temporal < Spatial ≤ Activation < dense.
        // Needs a denser schedule than Tiny's default for temporal deltas
        // to narrow (adjacent steps must actually be adjacent).
        let mut model = DiffusionModel::build(ModelKind::Bed, ModelScale::Tiny, 31);
        model.steps = 40;
        let t = trace_model(&model, 1, ExecPolicy::Dense).unwrap().0;
        let act = relative_bops(&t, StatView::Activation);
        let spa = relative_bops(&t, StatView::Spatial);
        let tmp = relative_bops(&t, StatView::Temporal);
        assert!((act - 1.0).abs() < 1e-9, "activation view is the dense reference");
        assert!(tmp < spa, "temporal {tmp} must beat spatial {spa}");
        assert!(spa < act, "spatial {spa} must beat dense {act}");
    }

    #[test]
    fn per_step_bops_start_dense_then_drop() {
        let t = trace(ModelKind::Ddpm);
        let series = per_step_relative_bops(&t, "conv-in").unwrap();
        assert_eq!(series.len(), t.step_count());
        assert!((series[0] - 1.0).abs() < 1e-9, "first step is dense");
        let later_mean: f64 = series[1..].iter().sum::<f64>() / (series.len() - 1) as f64;
        assert!(later_mean < series[0], "later steps save BOPs: {later_mean}");
    }

    #[test]
    fn unknown_layer_is_none() {
        let t = trace(ModelKind::Ddpm);
        assert!(per_step_relative_bops(&t, "no-such-layer").is_none());
    }

    #[test]
    fn memory_ratios_ordered() {
        // naive > defo ≥ 1: Defo only removes overhead, never adds.
        let t = trace(ModelKind::Sdm);
        let naive = naive_temporal_memory_ratio(&t);
        let defo = defo_temporal_memory_ratio(&t);
        assert!(naive > 1.5, "naive overhead substantial: {naive}");
        assert!(defo < naive, "defo {defo} reduces naive {naive}");
        assert!(defo >= 1.0);
    }
}
