//! A background JSONL writer: producers hand off complete lines through a
//! channel, one writer thread owns the file.
//!
//! This is the I/O half of the serve observability layer (`serve::obs`):
//! event producers on hot paths (the reactor, scheduler workers, request
//! threads) must never block on disk, so they push rendered lines into an
//! unbounded [`std::sync::mpsc`] channel — effectively a lock-free-ish
//! per-producer buffer — and a single writer thread drains it into a
//! buffered file. The writer flushes whenever the channel goes idle (so
//! `tail -f` sees events promptly and a `SIGKILL`ed process loses at most
//! the briefly buffered tail), and invokes an optional **idle hook** on
//! the same cadence — the obs layer uses it to checkpoint `summary.json`
//! so end-of-run aggregates survive a server that is killed rather than
//! shut down cleanly.

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::sync::mpsc;
use std::time::Duration;

/// How long the writer waits for the next line before flushing and firing
/// the idle hook.
const IDLE_FLUSH: Duration = Duration::from_millis(100);

/// Handle to a background JSONL writer thread. Cloning the internal sender
/// is cheap; dropping the handle drains every queued line, fires the idle
/// hook one final time, and joins the thread.
pub struct JsonlWriter {
    tx: Option<mpsc::Sender<String>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for JsonlWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlWriter").finish_non_exhaustive()
    }
}

impl JsonlWriter {
    /// Spawns a writer thread over `file` (`None` runs the idle-hook
    /// cadence without a stream file — the summary-only configuration).
    /// `idle_hook` runs on the writer thread whenever the channel has been
    /// quiet for ~100ms and once more at shutdown.
    pub fn spawn(file: Option<File>, mut idle_hook: impl FnMut() + Send + 'static) -> Self {
        let (tx, rx) = mpsc::channel::<String>();
        let thread = std::thread::Builder::new()
            .name("obs-writer".into())
            .spawn(move || {
                let mut out = file.map(BufWriter::new);
                let mut dirty = false;
                loop {
                    match rx.recv_timeout(IDLE_FLUSH) {
                        Ok(line) => {
                            if let Some(out) = out.as_mut() {
                                // A full disk is not worth killing the
                                // server over; the stream just truncates.
                                let _ = out.write_all(line.as_bytes());
                                let _ = out.write_all(b"\n");
                                dirty = true;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if dirty {
                                if let Some(out) = out.as_mut() {
                                    let _ = out.flush();
                                }
                                dirty = false;
                            }
                            idle_hook();
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                if let Some(out) = out.as_mut() {
                    let _ = out.flush();
                }
                idle_hook();
            })
            .expect("spawn obs writer thread");
        JsonlWriter { tx: Some(tx), thread: Some(thread) }
    }

    /// A clonable sender for producer threads. Sends never block; lines
    /// queue until the writer drains them.
    pub fn sender(&self) -> mpsc::Sender<String> {
        self.tx.as_ref().expect("writer alive").clone()
    }

    /// Enqueues one line (no trailing newline) from the handle itself.
    pub fn write(&self, line: String) {
        // Send fails only after shutdown began; late lines are dropped.
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(line);
        }
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        // Disconnect, then join: the thread drains the queue, flushes, and
        // fires the final idle hook before exiting.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Atomically replaces `path` with `bytes` (write to a sibling temp file,
/// then rename) so readers never observe a half-written document — the
/// contract `summary.json` checkpointing needs.
///
/// # Errors
///
/// Propagates filesystem failures from the write or rename.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ditto-jsonl-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn concurrent_senders_produce_every_line_intact() {
        let path = temp_path("concurrent");
        let writer = JsonlWriter::spawn(Some(File::create(&path).unwrap()), || {});
        std::thread::scope(|s| {
            for t in 0..8 {
                let tx = writer.sender();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(format!("{{\"t\":{t},\"i\":{i}}}")).unwrap();
                    }
                });
            }
        });
        drop(writer); // drains + flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 800);
        for line in &lines {
            let v = crate::jsonio::parse(line.as_bytes()).expect("interleaved lines stay valid");
            assert!(v.get("t").is_ok() && v.get("i").is_ok());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn idle_hook_fires_while_running_and_at_shutdown() {
        let fired = Arc::new(AtomicUsize::new(0));
        let writer = {
            let fired = Arc::clone(&fired);
            JsonlWriter::spawn(None, move || {
                fired.fetch_add(1, Ordering::Relaxed);
            })
        };
        // No lines at all: the idle timeout alone must fire the hook.
        std::thread::sleep(Duration::from_millis(300));
        assert!(fired.load(Ordering::Relaxed) >= 1, "idle hook fires without traffic");
        drop(writer);
        let at_shutdown = fired.load(Ordering::Relaxed);
        assert!(at_shutdown >= 2, "shutdown fires the hook once more");
    }

    #[test]
    fn write_atomic_replaces_content() {
        let path = temp_path("atomic");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }
}
