//! Versioned little-endian binary (de)serialization for the cacheable
//! trace types.
//!
//! The JSON cache ([`crate::jsonio`]) is human-inspectable but slow and
//! bulky: a Small-scale SDM trace is tens of megabytes of ASCII digits that
//! must be re-parsed on every suite load. This codec stores the same data
//! as fixed-width little-endian fields behind a 5-byte header — the magic
//! [`MAGIC`] (`"DITB"`) followed by the [`FORMAT_VERSION`] byte — so loads
//! are a single pass with no number parsing, and stale caches from a future
//! (or corrupted) format are rejected cleanly instead of misread. Every
//! decode error is recoverable: `bench::suite` treats any [`BinError`] as a
//! cache miss and re-traces.
//!
//! Wire format (all multi-byte values little-endian):
//!
//! | type        | encoding                                     |
//! |-------------|----------------------------------------------|
//! | `u64`       | 8 bytes                                      |
//! | `f32`       | 4 bytes (IEEE-754 bits, exact round-trip)    |
//! | `f64`       | 8 bytes (IEEE-754 bits, exact round-trip)    |
//! | `bool`      | 1 byte, `0`/`1`                              |
//! | `String`    | `u32` byte length + UTF-8 bytes              |
//! | `Vec<T>`    | `u32` element count + elements               |
//! | `Option<T>` | 1 tag byte (`0` none / `1` some) + payload   |
//! | enums       | 1 discriminant byte                          |

use crate::similarity::SimilarityReport;
use crate::trace::{LayerMeta, LinearKind, StepStats, SubOp, WorkloadTrace};
use quant::BitWidthHistogram;

/// File magic identifying a Ditto binary cache artifact.
pub const MAGIC: [u8; 4] = *b"DITB";

/// Current wire-format version. Bump on any layout change; readers reject
/// other versions so stale caches regenerate instead of decoding garbage.
pub const FORMAT_VERSION: u8 = 1;

/// Decode failure: what was expected and where it went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError(pub String);

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary codec error: {}", self.0)
    }
}

impl std::error::Error for BinError {}

fn err<T>(msg: impl Into<String>) -> Result<T, BinError> {
    Err(BinError(msg.into()))
}

/// Cursor over an encoded byte buffer.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload (header already stripped by [`from_slice`]).
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(chunk) => {
                self.pos += n;
                Ok(chunk)
            }
            None => err(format!(
                "truncated: wanted {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte chunk")))
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte chunk")))
    }

    /// Reads a length prefix, sanity-capped against the bytes actually left
    /// so a corrupt count cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, BinError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return err(format!("corrupt length {n} exceeds remaining {} bytes", self.remaining()));
        }
        Ok(n)
    }
}

/// Types encodable to the binary wire format.
pub trait ToBin {
    /// Appends the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);
}

/// Types decodable from the binary wire format.
pub trait FromBin: Sized {
    /// Decodes a value of `Self`, advancing the reader.
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError>;
}

/// Serializes `value` with the magic + version header.
pub fn to_vec<T: ToBin>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(FORMAT_VERSION);
    value.write(&mut out);
    out
}

/// Deserializes a buffer produced by [`to_vec`], checking the header and
/// that the payload is fully consumed.
pub fn from_slice<T: FromBin>(bytes: &[u8]) -> Result<T, BinError> {
    if bytes.len() < MAGIC.len() + 1 {
        return err("shorter than the magic + version header");
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return err("bad magic (not a Ditto binary cache file)");
    }
    let version = bytes[MAGIC.len()];
    if version != FORMAT_VERSION {
        return err(format!("format version {version}, expected {FORMAT_VERSION}"));
    }
    let mut r = Reader::new(&bytes[MAGIC.len() + 1..]);
    let value = T::read(&mut r)?;
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after payload", r.remaining()));
    }
    Ok(value)
}

impl ToBin for u64 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl FromBin for u64 {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        r.u64()
    }
}

impl ToBin for usize {
    fn write(&self, out: &mut Vec<u8>) {
        (*self as u64).write(out);
    }
}

impl FromBin for usize {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        usize::try_from(r.u64()?).map_err(|_| BinError("u64 out of usize range".into()))
    }
}

impl ToBin for f32 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl FromBin for f32 {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(f32::from_le_bytes(r.take(4)?.try_into().expect("4-byte chunk")))
    }
}

impl ToBin for f64 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl FromBin for f64 {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(f64::from_le_bytes(r.take(8)?.try_into().expect("8-byte chunk")))
    }
}

impl ToBin for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl FromBin for bool {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => err(format!("invalid bool byte {other}")),
        }
    }
}

impl ToBin for String {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl FromBin for String {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        let n = r.len(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError("invalid UTF-8 string".into()))
    }
}

impl<T: ToBin> ToBin for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.write(out);
        }
    }
}

impl<T: FromBin> FromBin for Vec<T> {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        // Elements are at least one byte on the wire, which bounds the
        // pre-allocation for corrupt counts.
        let n = r.len(1)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::read(r)?);
        }
        Ok(items)
    }
}

impl<T: ToBin> ToBin for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write(out);
            }
        }
    }
}

impl<T: FromBin> FromBin for Option<T> {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            other => err(format!("invalid Option tag {other}")),
        }
    }
}

impl ToBin for BitWidthHistogram {
    fn write(&self, out: &mut Vec<u8>) {
        self.zero.write(out);
        self.low4.write(out);
        self.full8.write(out);
        self.over8.write(out);
    }
}

impl FromBin for BitWidthHistogram {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(BitWidthHistogram {
            zero: u64::read(r)?,
            low4: u64::read(r)?,
            full8: u64::read(r)?,
            over8: u64::read(r)?,
        })
    }
}

impl ToBin for LinearKind {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(match self {
            LinearKind::Conv => 0,
            LinearKind::Fc => 1,
            LinearKind::MatmulQk => 2,
            LinearKind::MatmulPv => 3,
        });
    }
}

impl FromBin for LinearKind {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        match r.u8()? {
            0 => Ok(LinearKind::Conv),
            1 => Ok(LinearKind::Fc),
            2 => Ok(LinearKind::MatmulQk),
            3 => Ok(LinearKind::MatmulPv),
            other => err(format!("unknown LinearKind discriminant {other}")),
        }
    }
}

impl ToBin for SubOp {
    fn write(&self, out: &mut Vec<u8>) {
        self.label.write(out);
        self.elems.write(out);
        self.reuse.write(out);
    }
}

impl FromBin for SubOp {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(SubOp { label: String::read(r)?, elems: u64::read(r)?, reuse: u64::read(r)? })
    }
}

impl ToBin for LayerMeta {
    fn write(&self, out: &mut Vec<u8>) {
        self.node.write(out);
        self.name.write(out);
        self.kind.write(out);
        self.macs.write(out);
        self.elems.write(out);
        self.reuse.write(out);
        self.subops.write(out);
        self.in_bytes.write(out);
        self.weight_bytes.write(out);
        self.out_bytes.write(out);
        self.needs_diff_calc.write(out);
        self.needs_summation.write(out);
        self.in_boundary.write(out);
        self.out_boundary.write(out);
    }
}

impl FromBin for LayerMeta {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(LayerMeta {
            node: FromBin::read(r)?,
            name: FromBin::read(r)?,
            kind: FromBin::read(r)?,
            macs: FromBin::read(r)?,
            elems: FromBin::read(r)?,
            reuse: FromBin::read(r)?,
            subops: FromBin::read(r)?,
            in_bytes: FromBin::read(r)?,
            weight_bytes: FromBin::read(r)?,
            out_bytes: FromBin::read(r)?,
            needs_diff_calc: FromBin::read(r)?,
            needs_summation: FromBin::read(r)?,
            in_boundary: FromBin::read(r)?,
            out_boundary: FromBin::read(r)?,
        })
    }
}

impl ToBin for StepStats {
    fn write(&self, out: &mut Vec<u8>) {
        self.act.write(out);
        self.spa.write(out);
        self.temporal.write(out);
    }
}

impl FromBin for StepStats {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(StepStats {
            act: FromBin::read(r)?,
            spa: FromBin::read(r)?,
            temporal: FromBin::read(r)?,
        })
    }
}

impl ToBin for WorkloadTrace {
    fn write(&self, out: &mut Vec<u8>) {
        self.model.write(out);
        self.layers.write(out);
        self.steps.write(out);
    }
}

impl FromBin for WorkloadTrace {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(WorkloadTrace {
            model: FromBin::read(r)?,
            layers: FromBin::read(r)?,
            steps: FromBin::read(r)?,
        })
    }
}

impl ToBin for SimilarityReport {
    fn write(&self, out: &mut Vec<u8>) {
        self.names.write(out);
        self.temporal_cosine.write(out);
        self.spatial_cosine.write(out);
        self.act_range.write(out);
        self.diff_range.write(out);
    }
}

impl FromBin for SimilarityReport {
    fn read(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(SimilarityReport {
            names: FromBin::read(r)?,
            temporal_cosine: FromBin::read(r)?,
            spatial_cosine: FromBin::read(r)?,
            act_range: FromBin::read(r)?,
            diff_range: FromBin::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LayerMeta, LinearKind, StepStats, SubOp, WorkloadTrace};

    fn sample_trace() -> WorkloadTrace {
        let meta = LayerMeta {
            node: 3,
            name: "conv \"quoted\"\nname — utf8 ✓".into(),
            kind: LinearKind::MatmulQk,
            macs: 1 << 60,
            elems: 128,
            reuse: 1 << 53,
            subops: vec![SubOp { label: "dk".into(), elems: 7, reuse: 2 }],
            in_bytes: 11,
            weight_bytes: 0,
            out_bytes: 13,
            needs_diff_calc: true,
            needs_summation: false,
            in_boundary: vec!["silu".into()],
            out_boundary: vec![],
        };
        let st = StepStats {
            act: BitWidthHistogram { zero: 1, low4: 2, full8: 3, over8: 4 },
            spa: BitWidthHistogram::default(),
            temporal: Some(vec![BitWidthHistogram { zero: 9, low4: 0, full8: 0, over8: 0 }]),
        };
        WorkloadTrace {
            model: "SDM".into(),
            layers: vec![meta],
            steps: vec![vec![StepStats::default()], vec![st]],
        }
    }

    #[test]
    fn trace_roundtrips_exactly() {
        let t = sample_trace();
        let bytes = to_vec(&t);
        assert_eq!(&bytes[..4], &MAGIC);
        assert_eq!(bytes[4], FORMAT_VERSION);
        let back: WorkloadTrace = from_slice(&bytes).unwrap();
        assert_eq!(back.model, t.model);
        assert_eq!(back.layers.len(), 1);
        let (a, b) = (&back.layers[0], &t.layers[0]);
        assert_eq!(a.node, b.node);
        assert_eq!(a.name, b.name);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.macs, b.macs);
        assert_eq!(a.reuse, b.reuse);
        assert_eq!(a.subops, b.subops);
        assert_eq!(a.in_boundary, b.in_boundary);
        assert!(back.steps[0][0].temporal.is_none());
        assert_eq!(back.steps[1][0].temporal.as_ref().unwrap()[0].zero, 9);
        assert_eq!(back.steps[1][0].act.over8, 4);
    }

    #[test]
    fn similarity_report_roundtrips_float_bits() {
        let r = SimilarityReport {
            names: vec!["conv-in".into()],
            temporal_cosine: vec![vec![0.999_7, -1.0, 0.0, f32::NAN]],
            spatial_cosine: vec![vec![0.31]],
            act_range: vec![vec![21.88, f32::MIN_POSITIVE]],
            diff_range: vec![vec![4.83e-12, f32::INFINITY]],
        };
        let back: SimilarityReport = from_slice(&to_vec(&r)).unwrap();
        assert_eq!(back.names, r.names);
        // Bit-level round-trip, including non-finite values JSON cannot keep.
        for (a, b) in back.temporal_cosine[0].iter().zip(&r.temporal_cosine[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.diff_range[0][1], f32::INFINITY);
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let bytes = to_vec(&sample_trace());
        for cut in 0..bytes.len() {
            assert!(
                from_slice::<WorkloadTrace>(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let mut bytes = to_vec(&sample_trace());
        // Trailing garbage.
        bytes.push(0);
        assert!(from_slice::<WorkloadTrace>(&bytes).is_err());
        bytes.pop();
        // Future format version.
        bytes[4] = FORMAT_VERSION + 1;
        assert!(from_slice::<WorkloadTrace>(&bytes)
            .unwrap_err()
            .to_string()
            .contains("format version"));
        bytes[4] = FORMAT_VERSION;
        // Wrong magic (a JSON cache file, say).
        bytes[0] = b'{';
        assert!(from_slice::<WorkloadTrace>(&bytes).unwrap_err().to_string().contains("magic"));
    }

    #[test]
    fn corrupt_interior_bytes_error_cleanly() {
        let bytes = to_vec(&sample_trace());
        // Flip every byte in turn; decoding must never panic, and any
        // successful decode must at least be internally consistent (most
        // flips hit counts/discriminants and error out).
        for i in 5..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            let _ = from_slice::<WorkloadTrace>(&corrupt);
        }
        // A specifically poisoned enum discriminant errors.
        let mut corrupt = bytes.clone();
        // model "SDM" = 4-byte len + 3 bytes; first layer begins at 5+7=12
        // with node u64, then name len... easier: corrupt the last byte,
        // which sits inside the final histogram payload and breaks the
        // trailing-bytes/underrun invariant when lengths shift.
        let last = corrupt.len() - 1;
        corrupt.truncate(last);
        assert!(from_slice::<WorkloadTrace>(&corrupt).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        // A Vec<String> claiming u32::MAX entries in a tiny buffer must be
        // caught by the length sanity check, not attempt the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = from_slice::<Vec<String>>(&bytes).unwrap_err();
        assert!(e.to_string().contains("corrupt length"), "{e}");
    }

    #[test]
    fn binary_is_denser_than_json() {
        let t = sample_trace();
        let bin = to_vec(&t);
        let json = crate::jsonio::to_vec(&t);
        assert!(
            bin.len() < json.len(),
            "binary ({}) should undercut JSON ({})",
            bin.len(),
            json.len()
        );
    }
}
