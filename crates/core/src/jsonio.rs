//! Dependency-free JSON (de)serialization for the cacheable trace types.
//!
//! The build environment cannot reach a crates registry, so `serde` /
//! `serde_json` are unavailable; this module provides exactly the
//! serialization the workspace needs — the `bench` crate's on-disk cache of
//! [`WorkloadTrace`]s and [`SimilarityReport`]s under `target/ditto-cache/`.
//! The emitted shape matches what `#[derive(serde::Serialize)]` would
//! produce (objects keyed by field name, enums as variant-name strings), so
//! swapping the real serde back in later will read existing caches.

use crate::similarity::SimilarityReport;
use crate::trace::{LayerMeta, LinearKind, StepStats, SubOp, WorkloadTrace};
use quant::BitWidthHistogram;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number without a fractional part or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Decode failure: what was expected and where it went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError(format!("missing field `{key}`"))),
            _ => err(format!("expected object with field `{key}`")),
        }
    }
}

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(n) => {
            if n.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                out.push_str(&n.to_string());
            } else {
                // JSON has no NaN/Inf; `null` decodes back to NaN.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                out.push_str(&PAD.repeat(indent + 1));
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                out.push_str(&PAD.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_value(out, other),
    }
}

/// Serializes with 2-space indentation and a trailing newline — the format
/// for committed artifacts (`BENCH_*.json`) and `summary.json`, which are
/// meant to be read (and diffed) by humans in review.
pub fn to_vec_pretty<T: ToJson>(value: &T) -> Vec<u8> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_json(), 0);
    out.push('\n');
    out.into_bytes()
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs never occur in our own output;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return err("unknown escape"),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| JsonError("truncated utf-8".into()))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    s.push_str(text);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".into()))?;
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Int(i));
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => err(format!("invalid number `{text}`")),
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return err(format!("bad array at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return err(format!("bad object at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => err(format!("unexpected byte at {}", self.pos)),
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(bytes: &[u8]) -> Result<Value, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

// --------------------------------------------------------------------------
// Streamed line framing
// --------------------------------------------------------------------------

/// Accumulates bytes from a non-blocking stream and yields complete
/// newline-terminated frames — the framing layer of the line-delimited JSON
/// wire protocol the serve front-ends speak.
///
/// A socket read may end mid-line; [`push`](Self::push) buffers whatever
/// arrived and [`next_line`](Self::next_line) returns each completed line
/// (without its terminator, with a trailing `\r` stripped so `CRLF` clients
/// work) as soon as its `\n` shows up. Bytes after the last newline stay
/// buffered for the next read.
///
/// ```
/// use ditto_core::jsonio::LineFramer;
///
/// let mut f = LineFramer::new();
/// f.push(b"{\"id\":1}\n{\"id\"");
/// assert_eq!(f.next_line(), Some("{\"id\":1}".to_string()));
/// assert_eq!(f.next_line(), None);
/// f.push(b":2}\r\n");
/// assert_eq!(f.next_line(), Some("{\"id\":2}".to_string()));
/// ```
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Start of the first unconsumed byte in `buf`.
    start: usize,
    /// `buf[start..scanned]` is known to hold no `\n`: an incremental
    /// scan cursor, so a reactor polling [`next_line`](Self::next_line)
    /// after every socket read pays O(new bytes) per call instead of
    /// rescanning a long partial line from its beginning (quadratic on a
    /// multi-megabyte request).
    scanned: usize,
}

impl LineFramer {
    /// An empty framer.
    pub fn new() -> Self {
        LineFramer::default()
    }

    /// Appends freshly read bytes to the frame buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed space before growing (keeps long-lived
        // connections from accumulating dead prefix bytes).
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scanned = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line, if one is buffered. Invalid UTF-8 is
    /// replaced rather than erroring (the JSON parser downstream rejects
    /// such lines with a proper error response).
    pub fn next_line(&mut self) -> Option<String> {
        let Some(rel) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') else {
            self.scanned = self.buf.len();
            return None;
        };
        let nl = self.scanned + rel;
        let mut line = &self.buf[self.start..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = String::from_utf8_lossy(line).into_owned();
        self.start = nl + 1;
        self.scanned = self.start;
        Some(text)
    }

    /// Bytes buffered but not yet consumed as complete lines (callers use
    /// this to enforce a maximum line length on untrusted peers).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a complete (newline-terminated) line is currently buffered
    /// — i.e. whether [`next_line`](Self::next_line) would return `Some`
    /// without consuming anything. Skips the already-scanned prefix, so
    /// this stays cheap on a stalled partial line too.
    pub fn has_line(&self) -> bool {
        self.buf[self.scanned..].contains(&b'\n')
    }
}

// --------------------------------------------------------------------------
// Encode / decode traits
// --------------------------------------------------------------------------

/// Types encodable to a JSON [`Value`].
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Value;
}

/// Types decodable from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decodes a value of `Self`.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Serializes to bytes (compact, no trailing newline).
pub fn to_vec<T: ToJson>(value: &T) -> Vec<u8> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json());
    out.into_bytes()
}

/// Deserializes from bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    T::from_json(&parse(bytes)?)
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| JsonError(format!("{i} out of range for {}", stringify!($t)))),
                    _ => err(concat!("expected ", stringify!($t))),
                }
            }
        }
    )*};
}

impl_json_int!(u64, usize, i64);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => err("expected bool"),
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Num(n) => Ok(*n),
            // Integral f64s print without a fractional part and parse back
            // as Int; i128 → f64 is exact for every value we emit.
            Value::Int(i) => Ok(*i as f64),
            // JSON has no NaN/Inf; the writer emits `null` for them.
            Value::Null => Ok(f64::NAN),
            _ => err("expected number"),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Num(n) => Ok(*n as f32),
            Value::Int(i) => Ok(*i as f32),
            Value::Null => Ok(f32::NAN),
            _ => err("expected number"),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => err("expected string"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => err("expected array"),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

/// Builds an object from `("field", value)` pairs.
macro_rules! obj {
    ($(($key:literal, $val:expr)),* $(,)?) => {
        Value::Obj(vec![$(($key.to_string(), $val)),*])
    };
}

impl ToJson for BitWidthHistogram {
    fn to_json(&self) -> Value {
        obj![
            ("zero", self.zero.to_json()),
            ("low4", self.low4.to_json()),
            ("full8", self.full8.to_json()),
            ("over8", self.over8.to_json()),
        ]
    }
}

impl FromJson for BitWidthHistogram {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(BitWidthHistogram {
            zero: u64::from_json(v.get("zero")?)?,
            low4: u64::from_json(v.get("low4")?)?,
            full8: u64::from_json(v.get("full8")?)?,
            over8: u64::from_json(v.get("over8")?)?,
        })
    }
}

impl ToJson for LinearKind {
    fn to_json(&self) -> Value {
        let name = match self {
            LinearKind::Conv => "Conv",
            LinearKind::Fc => "Fc",
            LinearKind::MatmulQk => "MatmulQk",
            LinearKind::MatmulPv => "MatmulPv",
        };
        Value::Str(name.to_string())
    }
}

impl FromJson for LinearKind {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => match s.as_str() {
                "Conv" => Ok(LinearKind::Conv),
                "Fc" => Ok(LinearKind::Fc),
                "MatmulQk" => Ok(LinearKind::MatmulQk),
                "MatmulPv" => Ok(LinearKind::MatmulPv),
                other => err(format!("unknown LinearKind `{other}`")),
            },
            _ => err("expected LinearKind string"),
        }
    }
}

impl ToJson for SubOp {
    fn to_json(&self) -> Value {
        obj![
            ("label", self.label.to_json()),
            ("elems", self.elems.to_json()),
            ("reuse", self.reuse.to_json()),
        ]
    }
}

impl FromJson for SubOp {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SubOp {
            label: String::from_json(v.get("label")?)?,
            elems: u64::from_json(v.get("elems")?)?,
            reuse: u64::from_json(v.get("reuse")?)?,
        })
    }
}

impl ToJson for LayerMeta {
    fn to_json(&self) -> Value {
        obj![
            ("node", self.node.to_json()),
            ("name", self.name.to_json()),
            ("kind", self.kind.to_json()),
            ("macs", self.macs.to_json()),
            ("elems", self.elems.to_json()),
            ("reuse", self.reuse.to_json()),
            ("subops", self.subops.to_json()),
            ("in_bytes", self.in_bytes.to_json()),
            ("weight_bytes", self.weight_bytes.to_json()),
            ("out_bytes", self.out_bytes.to_json()),
            ("needs_diff_calc", self.needs_diff_calc.to_json()),
            ("needs_summation", self.needs_summation.to_json()),
            ("in_boundary", self.in_boundary.to_json()),
            ("out_boundary", self.out_boundary.to_json()),
        ]
    }
}

impl FromJson for LayerMeta {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(LayerMeta {
            node: FromJson::from_json(v.get("node")?)?,
            name: FromJson::from_json(v.get("name")?)?,
            kind: FromJson::from_json(v.get("kind")?)?,
            macs: FromJson::from_json(v.get("macs")?)?,
            elems: FromJson::from_json(v.get("elems")?)?,
            reuse: FromJson::from_json(v.get("reuse")?)?,
            subops: FromJson::from_json(v.get("subops")?)?,
            in_bytes: FromJson::from_json(v.get("in_bytes")?)?,
            weight_bytes: FromJson::from_json(v.get("weight_bytes")?)?,
            out_bytes: FromJson::from_json(v.get("out_bytes")?)?,
            needs_diff_calc: FromJson::from_json(v.get("needs_diff_calc")?)?,
            needs_summation: FromJson::from_json(v.get("needs_summation")?)?,
            in_boundary: FromJson::from_json(v.get("in_boundary")?)?,
            out_boundary: FromJson::from_json(v.get("out_boundary")?)?,
        })
    }
}

impl ToJson for StepStats {
    fn to_json(&self) -> Value {
        obj![
            ("act", self.act.to_json()),
            ("spa", self.spa.to_json()),
            ("temporal", self.temporal.to_json()),
        ]
    }
}

impl FromJson for StepStats {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(StepStats {
            act: FromJson::from_json(v.get("act")?)?,
            spa: FromJson::from_json(v.get("spa")?)?,
            temporal: FromJson::from_json(v.get("temporal")?)?,
        })
    }
}

impl ToJson for WorkloadTrace {
    fn to_json(&self) -> Value {
        obj![
            ("model", self.model.to_json()),
            ("layers", self.layers.to_json()),
            ("steps", self.steps.to_json()),
        ]
    }
}

impl FromJson for WorkloadTrace {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(WorkloadTrace {
            model: FromJson::from_json(v.get("model")?)?,
            layers: FromJson::from_json(v.get("layers")?)?,
            steps: FromJson::from_json(v.get("steps")?)?,
        })
    }
}

impl ToJson for SimilarityReport {
    fn to_json(&self) -> Value {
        obj![
            ("names", self.names.to_json()),
            ("temporal_cosine", self.temporal_cosine.to_json()),
            ("spatial_cosine", self.spatial_cosine.to_json()),
            ("act_range", self.act_range.to_json()),
            ("diff_range", self.diff_range.to_json()),
        ]
    }
}

impl FromJson for SimilarityReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SimilarityReport {
            names: FromJson::from_json(v.get("names")?)?,
            temporal_cosine: FromJson::from_json(v.get("temporal_cosine")?)?,
            spatial_cosine: FromJson::from_json(v.get("spatial_cosine")?)?,
            act_range: FromJson::from_json(v.get("act_range")?)?,
            diff_range: FromJson::from_json(v.get("diff_range")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LayerMeta, LinearKind, StepStats, SubOp, WorkloadTrace};

    fn sample_trace() -> WorkloadTrace {
        let meta = LayerMeta {
            node: 3,
            name: "conv \"quoted\"\nname".into(),
            kind: LinearKind::MatmulQk,
            macs: 1 << 60,
            elems: 128,
            reuse: 1 << 53,
            subops: vec![SubOp { label: "dk".into(), elems: 7, reuse: 2 }],
            in_bytes: 11,
            weight_bytes: 0,
            out_bytes: 13,
            needs_diff_calc: true,
            needs_summation: false,
            in_boundary: vec!["silu".into()],
            out_boundary: vec![],
        };
        let st = StepStats {
            act: BitWidthHistogram { zero: 1, low4: 2, full8: 3, over8: 4 },
            spa: BitWidthHistogram::default(),
            temporal: Some(vec![BitWidthHistogram { zero: 9, low4: 0, full8: 0, over8: 0 }]),
        };
        WorkloadTrace {
            model: "SDM".into(),
            layers: vec![meta],
            steps: vec![vec![StepStats::default()], vec![st]],
        }
    }

    #[test]
    fn trace_roundtrips_exactly() {
        let t = sample_trace();
        let bytes = to_vec(&t);
        let back: WorkloadTrace = from_slice(&bytes).unwrap();
        assert_eq!(back.model, t.model);
        assert_eq!(back.layers.len(), 1);
        let (a, b) = (&back.layers[0], &t.layers[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.macs, b.macs);
        assert_eq!(a.reuse, b.reuse);
        assert_eq!(a.subops, b.subops);
        assert!(back.steps[0][0].temporal.is_none());
        assert_eq!(back.steps[1][0].temporal.as_ref().unwrap()[0].zero, 9);
        assert_eq!(back.steps[1][0].act.over8, 4);
    }

    #[test]
    fn similarity_report_roundtrips_floats() {
        let r = SimilarityReport {
            names: vec!["conv-in".into()],
            temporal_cosine: vec![vec![0.999_7, -1.0, 0.0]],
            spatial_cosine: vec![vec![0.31]],
            act_range: vec![vec![21.88, f32::MIN_POSITIVE]],
            diff_range: vec![vec![4.83e-12]],
        };
        let back: SimilarityReport = from_slice(&to_vec(&r)).unwrap();
        assert_eq!(back.names, r.names);
        assert_eq!(back.temporal_cosine, r.temporal_cosine);
        assert_eq!(back.act_range, r.act_range);
        assert_eq!(back.diff_range, r.diff_range);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let r = SimilarityReport {
            names: vec!["l".into()],
            temporal_cosine: vec![vec![f32::NAN]],
            spatial_cosine: vec![vec![]],
            act_range: vec![vec![]],
            diff_range: vec![vec![]],
        };
        let back: SimilarityReport = from_slice(&to_vec(&r)).unwrap();
        assert!(back.temporal_cosine[0][0].is_nan());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1, 2,]").is_err());
        assert!(parse(b"nulls").is_err());
        assert!(parse(b"\"unterminated").is_err());
        assert!(from_slice::<WorkloadTrace>(b"{\"model\": 3}").is_err());
    }

    #[test]
    fn signed_ints_roundtrip() {
        for v in [0i64, -1, 42, i64::MIN, i64::MAX] {
            let bytes = to_vec(&v);
            let back: i64 = from_slice(&bytes).unwrap();
            assert_eq!(back, v);
        }
        assert!(from_slice::<i64>(b"170141183460469231731687303715884105727").is_err());
        assert!(from_slice::<u64>(b"-3").is_err());
    }

    #[test]
    fn line_framer_handles_partial_reads() {
        let mut f = LineFramer::new();
        f.push(b"abc");
        assert_eq!(f.next_line(), None);
        assert_eq!(f.buffered(), 3);
        f.push(b"\ndef\r\ngh");
        assert_eq!(f.next_line(), Some("abc".into()));
        assert_eq!(f.next_line(), Some("def".into()));
        assert_eq!(f.next_line(), None);
        assert_eq!(f.buffered(), 2);
        // One byte at a time still frames correctly.
        for &b in b"i\n" {
            f.push(&[b]);
        }
        assert_eq!(f.next_line(), Some("ghi".into()));
        assert_eq!(f.buffered(), 0);
        // Empty lines are yielded (the server skips blank requests itself).
        f.push(b"\n\nx\n");
        assert_eq!(f.next_line(), Some(String::new()));
        assert_eq!(f.next_line(), Some(String::new()));
        assert_eq!(f.next_line(), Some("x".into()));
        assert_eq!(f.next_line(), None);
    }

    #[test]
    fn line_framer_reclaims_consumed_space() {
        let mut f = LineFramer::new();
        for i in 0..2000 {
            f.push(format!("line-{i}\n").as_bytes());
            assert_eq!(f.next_line(), Some(format!("line-{i}")));
        }
        assert_eq!(f.buffered(), 0);
        f.push(b"tail");
        assert_eq!(f.buffered(), 4);
        assert_eq!(f.next_line(), None);
        f.push(b"\n");
        assert_eq!(f.next_line(), Some("tail".into()));
    }

    #[test]
    fn line_framer_scan_cursor_survives_compaction_and_has_line() {
        // A long partial line polled between every push: each next_line
        // miss advances the scan cursor, and the newline is still found
        // when it finally arrives (cursor never skips past unscanned
        // bytes, including across the start>4096 drain compaction).
        let mut f = LineFramer::new();
        f.push(format!("{}\n", "a".repeat(8192)).as_bytes());
        assert_eq!(f.next_line(), Some("a".repeat(8192)));
        assert!(!f.has_line());
        for _ in 0..64 {
            f.push(&[b'b'; 1024]);
            assert!(!f.has_line());
            assert_eq!(f.next_line(), None);
        }
        f.push(b"\rtail"); // CR without LF is ordinary payload so far
        assert_eq!(f.next_line(), None);
        f.push(b"\nrest\n");
        assert!(f.has_line());
        let long = f.next_line().expect("completed long line");
        assert_eq!(long.len(), 64 * 1024 + 5); // CR stripped only before LF
        assert!(long.ends_with("tail"));
        assert_eq!(f.next_line(), Some("rest".into()));
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn pretty_printer_roundtrips_and_indents() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Arr(vec![Value::Str("x".into()), Value::Null])),
            ("c".to_string(), Value::Obj(vec![])),
        ]);
        let pretty = String::from_utf8(to_vec_pretty(&v)).unwrap();
        assert!(pretty.ends_with('\n'));
        assert!(pretty.contains("\n  \"a\": 1"), "two-space indentation: {pretty}");
        assert!(pretty.contains("\"c\": {}"), "empty containers stay compact: {pretty}");
        assert_eq!(parse(pretty.trim_end().as_bytes()).unwrap(), v);
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v = parse(b" { \"a\" : [ 1 , -2.5e3 , \"x\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![Value::Int(1), Value::Num(-2500.0), Value::Str("xA\n".into()),])
        );
    }
}
