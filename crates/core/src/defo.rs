//! Defo static analysis: computing-graph dependency checking (§IV-B).
//!
//! In static time Defo "applies a computing graph analysis to find all
//! non-linear functions and check the dependency of layers", so that
//! difference calculation and summation are inserted **only before and
//! after non-linear functions** rather than around every linear layer.
//!
//! The analysis here computes, for every linear layer:
//!
//! * whether its classified operand arrives in the *original* domain (a
//!   non-linear producer or a graph input feeds it through
//!   difference-transparent structure only) → the layer must load the
//!   stored previous input and subtract (`needs_diff_calc`);
//! * whether its difference-domain output must be *summed* with the stored
//!   previous output because a non-linear function (or the graph output, or
//!   a domain-mixing junction) consumes it (`needs_summation`);
//! * the *kinds* of non-linear functions at those boundaries — used to
//!   model Cambricon-D's sign-mask data flow, which only supports SiLU and
//!   Group Normalization.
//!
//! Domain rules (§IV-A):
//! * a linear layer executing in difference mode outputs a **Diff**-domain
//!   tensor (bias cancels in the subtraction);
//! * transparent ops (`Add`, reshapes, slices, concat, scale) propagate
//!   **Diff** only if *all* their data operands are Diff — mixing Diff with
//!   Original forces a summation on the Diff side first;
//! * non-linear ops always force summation and output **Original**.

use diffusion::{LayerGraph, LayerOp, NodeId, OpClass};

/// Value domain of a node's output under all-layers-in-difference-mode
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Original activations.
    Original,
    /// Temporal differences.
    Diff,
}

/// Result of the static dependency analysis.
#[derive(Debug, Clone)]
pub struct DefoStatic {
    /// Per graph node: output domain.
    pub domains: Vec<Domain>,
    /// Per linear layer node id: boundary flags.
    pub boundaries: Vec<LayerBoundary>,
}

/// Boundary flags of one linear layer.
#[derive(Debug, Clone)]
pub struct LayerBoundary {
    /// The linear layer's node id.
    pub node: NodeId,
    /// Operand arrives in the Original domain → difference calculation
    /// (load + subtract stored previous input) is required.
    pub needs_diff_calc: bool,
    /// Output region hits a non-linear consumer / graph output / mixing
    /// junction → summation with the stored previous output is required.
    pub needs_summation: bool,
    /// Non-linear producer kinds feeding the operand (via transparent ops).
    pub in_boundary: Vec<String>,
    /// Non-linear consumer kinds reached by the output region.
    pub out_boundary: Vec<String>,
}

/// Runs the static analysis on a graph.
pub fn analyze(graph: &LayerGraph) -> DefoStatic {
    let n = graph.len();
    let mut domains = vec![Domain::Original; n];
    // Forward pass: compute domains in topological (id) order.
    for node in graph.nodes() {
        domains[node.id] = match node.op.class() {
            OpClass::Linear => Domain::Diff,
            OpClass::NonLinear | OpClass::Input => Domain::Original,
            OpClass::Transparent => {
                if node.inputs.iter().all(|&i| domains[i] == Domain::Diff) {
                    Domain::Diff
                } else {
                    Domain::Original
                }
            }
        };
    }
    let consumers = graph.consumers();
    let mut boundaries = Vec::new();
    for node in graph.nodes() {
        if !node.op.is_linear_layer() {
            continue;
        }
        // Input side: walk producers through transparent ops.
        let mut in_kinds = Vec::new();
        let mut needs_diff_calc = false;
        for &operand in classified_operands(&node.op, &node.inputs) {
            collect_original_producers(graph, operand, &mut in_kinds, &mut needs_diff_calc);
        }
        // Output side: walk consumers through transparent ops; a consumer
        // that is non-linear, or a transparent consumer whose own domain is
        // Original (mixing), or the graph output, forces summation.
        let mut out_kinds = Vec::new();
        let mut needs_summation = false;
        collect_summation_consumers(
            graph,
            &consumers,
            &domains,
            node.id,
            &mut out_kinds,
            &mut needs_summation,
        );
        in_kinds.sort_unstable();
        in_kinds.dedup();
        out_kinds.sort_unstable();
        out_kinds.dedup();
        boundaries.push(LayerBoundary {
            node: node.id,
            needs_diff_calc,
            needs_summation,
            in_boundary: in_kinds,
            out_boundary: out_kinds,
        });
    }
    DefoStatic { domains, boundaries }
}

/// The operands whose values the layer classifies / differences.
///
/// For attention matmuls both operands change over time and both are
/// difference-processed; for conv/FC it is the single data operand.
fn classified_operands<'a>(op: &LayerOp, inputs: &'a [NodeId]) -> &'a [NodeId] {
    match op {
        LayerOp::MatmulQK | LayerOp::MatmulPV => inputs,
        _ => &inputs[..1],
    }
}

fn collect_original_producers(
    graph: &LayerGraph,
    node: NodeId,
    kinds: &mut Vec<String>,
    needs_diff_calc: &mut bool,
) {
    let n = graph.node(node);
    match n.op.class() {
        OpClass::Linear => {} // diff domain continues; no boundary here
        OpClass::NonLinear => {
            *needs_diff_calc = true;
            kinds.push(n.op.kind_name().to_string());
        }
        OpClass::Input => {
            // The latent input itself changes across steps; differencing it
            // requires the stored previous input (conv-in's boundary).
            *needs_diff_calc = true;
        }
        OpClass::Transparent => {
            for &i in &n.inputs {
                collect_original_producers(graph, i, kinds, needs_diff_calc);
            }
        }
    }
}

fn collect_summation_consumers(
    graph: &LayerGraph,
    consumers: &[Vec<NodeId>],
    domains: &[Domain],
    node: NodeId,
    kinds: &mut Vec<String>,
    needs_summation: &mut bool,
) {
    if node == graph.output() {
        *needs_summation = true;
    }
    for &c in &consumers[node] {
        let cn = graph.node(c);
        match cn.op.class() {
            OpClass::Linear => {} // stays in the diff domain
            OpClass::NonLinear => {
                *needs_summation = true;
                kinds.push(cn.op.kind_name().to_string());
            }
            OpClass::Transparent => {
                if domains[c] == Domain::Diff {
                    collect_summation_consumers(
                        graph,
                        consumers,
                        domains,
                        c,
                        kinds,
                        needs_summation,
                    );
                } else {
                    // Mixing junction: our diff operand meets an original
                    // operand — must materialize originals first.
                    *needs_summation = true;
                }
            }
            OpClass::Input => unreachable!("inputs consume nothing"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffusion::{InputKind, LayerGraph, LayerOp};
    use tensor::Tensor;

    fn linear_op(n: usize) -> LayerOp {
        LayerOp::Linear { weight: Tensor::eye(n), bias: None }
    }

    /// input → fc1 → fc2 → silu → fc3 → (output)
    fn chain() -> LayerGraph {
        let mut g = LayerGraph::new();
        let x = g.add("x", LayerOp::Input(InputKind::Latent), &[]);
        let f1 = g.add("fc1", linear_op(2), &[x]);
        let f2 = g.add("fc2", linear_op(2), &[f1]);
        let s = g.add("silu", LayerOp::SiLU, &[f2]);
        let f3 = g.add("fc3", linear_op(2), &[s]);
        g.set_output(f3);
        g
    }

    #[test]
    fn chain_boundaries() {
        let a = analyze(&chain());
        // fc1: operand is the latent input → diff calc; consumer fc2 is
        // linear → no summation.
        let b1 = &a.boundaries[0];
        assert!(b1.needs_diff_calc);
        assert!(!b1.needs_summation);
        // (in_boundary empty: the producer is the graph input, not a
        // non-linear fn.)
        assert!(b1.in_boundary.is_empty());
        // fc2: operand from fc1 (diff domain) → no diff calc; consumer is
        // SiLU → summation with kind recorded.
        let b2 = &a.boundaries[1];
        assert!(!b2.needs_diff_calc);
        assert!(b2.needs_summation);
        assert_eq!(b2.out_boundary, vec!["silu".to_string()]);
        // fc3: operand from SiLU → diff calc with kind; it is the graph
        // output → summation.
        let b3 = &a.boundaries[2];
        assert!(b3.needs_diff_calc);
        assert_eq!(b3.in_boundary, vec!["silu".to_string()]);
        assert!(b3.needs_summation);
    }

    #[test]
    fn transparent_add_keeps_diff_domain() {
        // fc1 and fc2 outputs added → still diff; then softmax forces
        // summation attributed to both producers.
        let mut g = LayerGraph::new();
        let x = g.add("x", LayerOp::Input(InputKind::Latent), &[]);
        let f1 = g.add("fc1", linear_op(2), &[x]);
        let f2 = g.add("fc2", linear_op(2), &[x]);
        let add = g.add("add", LayerOp::Add, &[f1, f2]);
        let sm = g.add("softmax", LayerOp::Softmax, &[add]);
        g.set_output(sm);
        let a = analyze(&g);
        assert_eq!(a.domains[add], Domain::Diff);
        for b in &a.boundaries {
            assert!(b.needs_summation);
            assert_eq!(b.out_boundary, vec!["softmax".to_string()]);
        }
    }

    #[test]
    fn mixed_add_forces_summation() {
        // fc output added to the raw input (original domain) — the diff
        // producer must be summed before the add.
        let mut g = LayerGraph::new();
        let x = g.add("x", LayerOp::Input(InputKind::Latent), &[]);
        let f1 = g.add("fc1", linear_op(2), &[x]);
        let add = g.add("residual", LayerOp::Add, &[f1, x]);
        let f2 = g.add("fc2", linear_op(2), &[add]);
        g.set_output(f2);
        let a = analyze(&g);
        assert_eq!(a.domains[add], Domain::Original);
        let b1 = &a.boundaries[0];
        assert!(b1.needs_summation, "mixing junction forces summation");
        // fc2 consumes an Original-domain operand → diff calc required.
        let b2 = &a.boundaries[1];
        assert!(b2.needs_diff_calc);
    }

    #[test]
    fn attention_operands_both_checked() {
        // Q from linear (diff), K from softmax (original) → diff calc
        // needed because of the K side.
        let mut g = LayerGraph::new();
        let x = g.add("x", LayerOp::Input(InputKind::Latent), &[]);
        let q = g.add("q", linear_op(2), &[x]);
        let s = g.add("sm", LayerOp::Softmax, &[x]);
        let qk = g.add("qk", LayerOp::MatmulQK, &[q, s]);
        g.set_output(qk);
        let a = analyze(&g);
        let qk_b = a.boundaries.iter().find(|b| b.node == qk).unwrap();
        assert!(qk_b.needs_diff_calc);
        assert!(qk_b.in_boundary.iter().any(|k| k == "softmax"));
    }

    #[test]
    fn real_model_analysis_is_consistent() {
        use diffusion::{DiffusionModel, ModelKind, ModelScale};
        for kind in [ModelKind::Sdm, ModelKind::Dit] {
            let m = DiffusionModel::build(kind, ModelScale::Tiny, 1);
            let a = analyze(&m.graph);
            assert_eq!(a.boundaries.len(), m.graph.linear_layers().len());
            // At least one layer must be free of diff-calc (a chained
            // linear) and at least one must need it.
            assert!(a.boundaries.iter().any(|b| !b.needs_diff_calc), "{kind:?}");
            assert!(a.boundaries.iter().any(|b| b.needs_diff_calc), "{kind:?}");
        }
    }

    #[test]
    fn sdm_has_non_signmask_boundaries_ddpm_some_covered() {
        use diffusion::{DiffusionModel, ModelKind, ModelScale};
        let sdm = DiffusionModel::build(ModelKind::Sdm, ModelScale::Tiny, 1);
        let a = analyze(&sdm.graph);
        let non_silu_gn = a.boundaries.iter().any(|b| {
            b.in_boundary.iter().chain(&b.out_boundary).any(|k| *k != "silu" && *k != "group_norm")
        });
        assert!(non_silu_gn, "SDM uses GeLU/Softmax/LayerNorm boundaries");
    }
}
