//! The whole-stack telemetry core: scoped spans, counters,
//! [`LogHistogram`]-backed timing series, and two exporters — the shared
//! JSONL event stream (`DITTO_OBS_STREAM`, the same file `serve::obs`
//! writes to) and a Chrome trace-event (catapult) JSON file
//! (`DITTO_TRACE_FILE`) loadable in chrome://tracing or Perfetto.
//!
//! # Cost model
//!
//! Everything hangs off one process-wide gate, [`on`]: a single relaxed
//! atomic load plus a branch. With both env vars unset the global handle is
//! disabled, no writer thread is ever spawned, and every instrumentation
//! point in the compute stack costs exactly that load-and-branch. The gate
//! resolves once (CAS-publish, same pattern as `tensor::backend::active`)
//! so the hot path never re-reads the environment.
//!
//! # Architecture
//!
//! Producers either hold an explicit [`Telemetry`] handle (tests) or go
//! through the module-level helpers ([`span`], [`counter`], [`series`],
//! [`event`]) that route to [`global`]. The enabled handle owns one
//! [`JsonlWriter`] — serve's obs layer shares it, so serve events and
//! compute spans land in one stream — and uses its ~100ms idle cadence to:
//!
//! 1. drain the compute-stack probe registries
//!    ([`plan::drain_exec_telemetry`] and
//!    [`backend::dispatch_counts`]), folding per-opcode plan profiles
//!    into cumulative [`plan::PlanProfile`]s and emitting `plan_profile` /
//!    `kernel_dispatch` stream events when anything changed;
//! 2. run registered idle hooks (serve's summary checkpoint);
//! 3. atomically checkpoint the catapult trace file, so it is valid JSON
//!    — and at most ~100ms stale — even for a `SIGKILL`ed process.
//!
//! Enabling a handle flips the probe gates
//! ([`plan::set_profiling`], [`backend::set_dispatch_counting`]) on; those
//! layers cannot depend on this crate, so they accumulate locally and this
//! layer drains them.
//!
//! Binaries that exit cleanly call [`Telemetry::flush`] (or the module
//! [`flush`]), which emits the final counter/series/profile snapshots and
//! then waits for two idle ticks — the writer only ticks after draining the
//! channel and flushing, so on return every line and the trace file are on
//! disk.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::hist::LogHistogram;
use crate::jsonio::{self, ToJson, Value};
use crate::jsonl::{write_atomic, JsonlWriter};
use diffusion::plan;
use tensor::backend;

// --------------------------------------------------------------------------
// The process-wide gate
// --------------------------------------------------------------------------

/// Cached enabled-ness of the [`global`] handle: `0` unresolved, `1` off,
/// `2` on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the process-wide telemetry is enabled. This is the whole cost
/// of an instrumentation point on the disabled path: one relaxed load and
/// a branch.
#[inline]
pub fn on() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve(),
    }
}

#[cold]
fn resolve() -> bool {
    let enabled = global().enabled();
    let enc = if enabled { 2 } else { 1 };
    // A racing resolver computed the same value; either write wins.
    let _ = STATE.compare_exchange(0, enc, Ordering::Relaxed, Ordering::Relaxed);
    enabled
}

/// The process-wide handle, initialized from `DITTO_OBS_STREAM` /
/// `DITTO_TRACE_FILE` on first use. Tests build explicit handles with
/// [`Telemetry::to_files`] instead of racing on env vars.
pub fn global() -> &'static Arc<Telemetry> {
    static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Telemetry::from_env()))
}

/// Small dense per-thread id for trace-event `tid` fields (thread names
/// are not stable or JSON-friendly; catapult wants integers).
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Plan-interpreter spans carry their own thread ids (diffusion cannot see
/// ours); offsetting them keeps the two id spaces disjoint in the trace.
const PLAN_TID_BASE: u64 = 1 << 32;

// --------------------------------------------------------------------------
// Trace sink (chrome://tracing)
// --------------------------------------------------------------------------

/// One complete (`ph:"X"`) trace event. `args` is the catapult per-event
/// argument object (shown in the chrome://tracing detail pane); empty means
/// the `args` key is omitted entirely.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    args: Vec<(String, Value)>,
}

/// Span cap between checkpoints; beyond it events are counted, not kept
/// (the count is exported as `dittoDroppedEvents`).
const MAX_TRACE_EVENTS: usize = 65_536;

#[derive(Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    dropped: u64,
    dirty: bool,
}

struct TraceSink {
    path: PathBuf,
    buf: Mutex<TraceBuf>,
}

/// Renders the catapult JSON object form (`{"traceEvents": [...]}`), which
/// both chrome://tracing and Perfetto load.
fn render_catapult(events: &[TraceEvent], dropped: u64) -> Vec<u8> {
    let pid = u64::from(std::process::id());
    let arr = events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("name", Value::Str(e.name.clone())),
                ("cat", Value::Str(e.cat.to_string())),
                ("ph", Value::Str("X".into())),
                ("ts", e.ts_us.to_json()),
                ("dur", e.dur_us.to_json()),
                ("pid", pid.to_json()),
                ("tid", e.tid.to_json()),
            ];
            if !e.args.is_empty() {
                fields.push(("args", Value::Obj(e.args.clone())));
            }
            obj(fields)
        })
        .collect();
    let doc =
        obj(vec![("traceEvents", Value::Arr(arr)), ("dittoDroppedEvents", dropped.to_json())]);
    jsonio::to_vec(&doc)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// --------------------------------------------------------------------------
// Shared state between the handle and the writer thread
// --------------------------------------------------------------------------

struct Shared {
    epoch: Instant,
    trace: Option<TraceSink>,
    hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    counters: Mutex<Vec<(String, u64)>>,
    series: Mutex<Vec<(String, LogHistogram)>>,
    /// Cumulative per-digest plan profiles, merged from registry drains.
    profiles: Mutex<Vec<plan::PlanProfile>>,
    /// Total dispatch count at the last `kernel_dispatch` emission.
    dispatch_emitted: Mutex<u64>,
    /// Completed idle ticks; [`Telemetry::flush`] waits on this.
    ticks: AtomicU64,
    /// Present only while a stream file exists. Cleared by `Inner`'s drop
    /// *before* the writer handle drops — keeping a live `Sender` here
    /// would hold the channel open and the writer thread would never see
    /// `Disconnected`, deadlocking the join.
    sender: Mutex<Option<mpsc::Sender<String>>>,
}

impl Shared {
    fn now_us(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    fn send_line(&self, line: String) {
        let tx = self.sender.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(tx) = tx.as_ref() {
            let _ = tx.send(line);
        }
    }

    fn has_sender(&self) -> bool {
        self.sender.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
    }

    fn emit(&self, event: &str, mut fields: Vec<(&str, Value)>) {
        if !self.has_sender() {
            return;
        }
        let mut all = Vec::with_capacity(fields.len() + 2);
        all.push(("event", Value::Str(event.to_string())));
        all.push(("t_us", self.now_us(Instant::now()).to_json()));
        all.append(&mut fields);
        let line = jsonio::to_vec(&obj(all));
        self.send_line(String::from_utf8(line).expect("jsonio writes UTF-8"));
    }

    fn push_trace(&self, ev: TraceEvent) {
        let Some(sink) = self.trace.as_ref() else { return };
        let mut buf = sink.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.events.len() < MAX_TRACE_EVENTS {
            buf.events.push(ev);
            buf.dirty = true;
        } else {
            buf.dropped += 1;
        }
    }

    /// Drains the compute-stack probe registries into this handle. Emits
    /// `plan_profile` and `kernel_dispatch` stream events only when the
    /// drain observed new activity, so an idle server stays quiet.
    fn fold_probes(&self) {
        let t = plan::drain_exec_telemetry();
        for s in &t.spans {
            self.push_trace(TraceEvent {
                name: format!("plan_step:{:016x}", s.digest),
                cat: "plan",
                ts_us: self.now_us(s.start),
                dur_us: s.dur_ns / 1_000,
                tid: PLAN_TID_BASE + s.tid,
                // The digest also rides as a structured catapult arg so
                // trace consumers can group steps by plan without parsing
                // the span name.
                args: vec![("digest".to_string(), Value::Str(format!("{:016x}", s.digest)))],
            });
        }
        if !t.profiles.is_empty() {
            let mut profs = self.profiles.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for p in t.profiles {
                merge_profile(&mut profs, p);
            }
            for p in profs.iter() {
                self.emit("plan_profile", profile_fields(p));
            }
        }
        if t.spans_dropped > 0 {
            self.emit("plan_spans_dropped", vec![("count", t.spans_dropped.to_json())]);
        }
        let counts = backend::dispatch_counts();
        let total: u64 = counts.iter().map(|c| c.count).sum();
        let mut last =
            self.dispatch_emitted.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if total != *last {
            *last = total;
            let rows = counts
                .iter()
                .map(|c| {
                    obj(vec![
                        ("kernel", Value::Str(c.kernel.to_string())),
                        ("backend", Value::Str(c.backend.clone())),
                        ("count", c.count.to_json()),
                    ])
                })
                .collect();
            self.emit("kernel_dispatch", vec![("rows", Value::Arr(rows))]);
        }
    }

    fn checkpoint_trace(&self) {
        let Some(sink) = self.trace.as_ref() else { return };
        let rendered = {
            let mut buf = sink.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !buf.dirty {
                return;
            }
            buf.dirty = false;
            render_catapult(&buf.events, buf.dropped)
        };
        if let Err(e) = write_atomic(&sink.path, &rendered) {
            eprintln!("[ditto] telemetry: trace checkpoint failed: {e}");
        }
    }

    /// One writer-thread idle tick: probes → hooks → trace checkpoint.
    fn idle_tick(&self) {
        self.fold_probes();
        let hooks = self.hooks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for h in hooks.iter() {
            h();
        }
        drop(hooks);
        self.checkpoint_trace();
        self.ticks.fetch_add(1, Ordering::Release);
    }
}

fn merge_profile(into: &mut Vec<plan::PlanProfile>, p: plan::PlanProfile) {
    match into.iter_mut().find(|q| q.digest == p.digest) {
        None => into.push(p),
        Some(q) => {
            q.steps += p.steps;
            q.total_ns += p.total_ns;
            q.arena_f32 = q.arena_f32.max(p.arena_f32);
            for k in p.by_kind {
                match q.by_kind.iter_mut().find(|x| x.kind == k.kind) {
                    Some(x) => {
                        x.calls += k.calls;
                        x.ns += k.ns;
                        x.bytes += k.bytes;
                    }
                    None => q.by_kind.push(k),
                }
            }
        }
    }
}

fn profile_fields(p: &plan::PlanProfile) -> Vec<(&'static str, Value)> {
    let by_kind = p
        .by_kind
        .iter()
        .map(|k| {
            (
                k.kind.to_string(),
                obj(vec![
                    ("calls", k.calls.to_json()),
                    ("ns", k.ns.to_json()),
                    ("bytes", k.bytes.to_json()),
                ]),
            )
        })
        .collect();
    vec![
        ("digest", Value::Str(format!("{:016x}", p.digest))),
        ("steps", p.steps.to_json()),
        ("total_ns", p.total_ns.to_json()),
        ("arena_f32", p.arena_f32.to_json()),
        ("by_kind", Value::Obj(by_kind)),
    ]
}

// --------------------------------------------------------------------------
// The handle
// --------------------------------------------------------------------------

struct Inner {
    /// Owns the writer thread; kept so dropping an explicit handle drains
    /// the stream and runs one final idle tick.
    _writer: JsonlWriter,
    shared: Arc<Shared>,
    stream: bool,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Release the channel before `_writer` drops (fields drop after
        // this body), or the writer thread would never disconnect and the
        // join would hang.
        *self.shared.sender.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// Handle to the telemetry layer. Disabled it is a `None` wrapper: every
/// method returns immediately, nothing is spawned or created.
pub struct Telemetry {
    inner: Option<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

impl Telemetry {
    /// A disabled handle: no writer thread, every call a no-op.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Reads `DITTO_OBS_STREAM` (JSONL event stream) and `DITTO_TRACE_FILE`
    /// (catapult trace). Both unset ⇒ disabled.
    pub fn from_env() -> Telemetry {
        let path = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty()).map(PathBuf::from);
        Telemetry::to_files(
            path("DITTO_OBS_STREAM").as_deref(),
            path("DITTO_TRACE_FILE").as_deref(),
        )
    }

    /// An explicit handle: `stream` receives the JSONL event stream,
    /// `trace` the checkpointed catapult JSON. Both `None` ⇒ disabled
    /// (no writer thread at all). Enabling flips the compute-stack probe
    /// gates on (plan profiling, kernel-dispatch counting); file-creation
    /// failures degrade to the sinks that did open.
    pub fn to_files(stream: Option<&Path>, trace: Option<&Path>) -> Telemetry {
        if stream.is_none() && trace.is_none() {
            return Telemetry::disabled();
        }
        let file = stream.and_then(|p| match File::create(p) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("[ditto] telemetry: cannot create stream {}: {e}", p.display());
                None
            }
        });
        let has_stream = file.is_some();
        let trace_sink = trace
            .map(|p| TraceSink { path: p.to_path_buf(), buf: Mutex::new(TraceBuf::default()) });
        if !has_stream && trace_sink.is_none() {
            return Telemetry::disabled();
        }
        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            trace: trace_sink,
            hooks: Mutex::new(Vec::new()),
            counters: Mutex::new(Vec::new()),
            series: Mutex::new(Vec::new()),
            profiles: Mutex::new(Vec::new()),
            dispatch_emitted: Mutex::new(0),
            ticks: AtomicU64::new(0),
            sender: Mutex::new(None),
        });
        let hook_shared = Arc::clone(&shared);
        let writer = JsonlWriter::spawn(file, move || hook_shared.idle_tick());
        if has_stream {
            *shared.sender.lock().expect("fresh mutex") = Some(writer.sender());
        }
        plan::set_profiling(true);
        backend::set_dispatch_counting(true);
        Telemetry { inner: Some(Inner { _writer: writer, shared, stream: has_stream }) }
    }

    /// Whether anything is being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a JSONL stream file is attached (vs trace-only).
    #[inline]
    pub fn has_stream(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.stream)
    }

    /// Registers a hook run on the writer thread's ~100ms idle cadence and
    /// once at shutdown — `serve::obs` checkpoints `summary.json` here.
    /// No-op on a disabled handle.
    pub fn on_idle(&self, hook: impl Fn() + Send + Sync + 'static) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .shared
                .hooks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Box::new(hook));
        }
    }

    /// Enqueues one pre-rendered JSONL line (no trailing newline) onto the
    /// shared stream — the seam `serve::obs` writes its events through.
    pub fn write_line(&self, line: String) {
        if let Some(inner) = self.inner.as_ref() {
            inner.shared.send_line(line);
        }
    }

    /// Emits a stream event (stamped with `event` and `t_us` like every
    /// obs event). Silently dropped when no stream file is attached.
    pub fn event(&self, name: &str, fields: Vec<(&str, Value)>) {
        if let Some(inner) = self.inner.as_ref() {
            inner.shared.emit(name, fields);
        }
    }

    /// Microseconds since this handle's epoch (the stream `t_us` base).
    pub fn epoch_us(&self, at: Instant) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.shared.now_us(at))
    }

    /// Records a completed span retroactively — for callers that learn the
    /// start/duration after the fact (e.g. scheduling wait measured by the
    /// worker that dequeues the job). Lands in the catapult trace and, when
    /// a stream is attached, as a `span` event.
    pub fn record_span(&self, cat: &'static str, name: &str, start: Instant, dur: Duration) {
        self.record_span_args(cat, name, start, dur, Vec::new());
    }

    /// [`Telemetry::record_span`] with structured catapult `args` attached
    /// to the trace event (and an `args` object on the stream `span` event
    /// when non-empty).
    pub fn record_span_args(
        &self,
        cat: &'static str,
        name: &str,
        start: Instant,
        dur: Duration,
        args: Vec<(String, Value)>,
    ) {
        let Some(inner) = self.inner.as_ref() else { return };
        let ts_us = inner.shared.now_us(start);
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let tid = current_tid();
        let stream_args =
            if inner.stream && !args.is_empty() { Some(Value::Obj(args.clone())) } else { None };
        inner.shared.push_trace(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            dur_us,
            tid,
            args,
        });
        if inner.stream {
            let mut fields = vec![
                ("cat", Value::Str(cat.to_string())),
                ("name", Value::Str(name.to_string())),
                ("ts_us", ts_us.to_json()),
                ("dur_us", dur_us.to_json()),
                ("tid", tid.to_json()),
            ];
            if let Some(a) = stream_args {
                fields.push(("args", a));
            }
            inner.shared.emit("span", fields);
        }
    }

    /// Opens a scoped span; the guard records it on drop. Cheap no-op
    /// guard when disabled.
    pub fn span(self: &Arc<Self>, cat: &'static str, name: impl Into<String>) -> SpanGuard {
        self.span_args(cat, name, Vec::new())
    }

    /// [`Telemetry::span`] with structured catapult `args` recorded on the
    /// span when the guard drops.
    pub fn span_args(
        self: &Arc<Self>,
        cat: &'static str,
        name: impl Into<String>,
        args: Vec<(String, Value)>,
    ) -> SpanGuard {
        if self.enabled() {
            SpanGuard { active: Some((Arc::clone(self), cat, name.into(), Instant::now(), args)) }
        } else {
            SpanGuard { active: None }
        }
    }

    /// Adds `delta` to the named counter (flushed as one snapshot event).
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(inner) = self.inner.as_ref() else { return };
        let mut c = inner.shared.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match c.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => c.push((name.to_string(), delta)),
        }
    }

    /// Records `value` into the named [`LogHistogram`] timing/depth series.
    pub fn series_record(&self, name: &str, value: u64) {
        let Some(inner) = self.inner.as_ref() else { return };
        let mut s = inner.shared.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match s.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = LogHistogram::default();
                h.record(value);
                s.push((name.to_string(), h));
            }
        }
    }

    /// Current counter snapshot (insertion order), for tests and the final
    /// flush event.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.shared.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
        })
    }

    /// Emits the final counter/series/profile/dispatch snapshots, then
    /// waits until the writer thread has drained the stream and
    /// checkpointed the trace file (two idle ticks — each tick implies the
    /// channel sat empty and everything before it was flushed). Call from
    /// binaries before exiting; the global handle is never dropped.
    pub fn flush(&self) {
        let Some(inner) = self.inner.as_ref() else { return };
        inner.shared.fold_probes();
        {
            let c = inner.shared.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !c.is_empty() {
                let fields = c.iter().map(|(n, v)| (n.clone(), v.to_json())).collect::<Vec<_>>();
                inner.shared.emit("counters", vec![("values", Value::Obj(fields))]);
            }
        }
        {
            let s = inner.shared.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !s.is_empty() {
                let fields =
                    s.iter().map(|(n, h)| (n.clone(), h.summary_json())).collect::<Vec<_>>();
                inner.shared.emit("series", vec![("values", Value::Obj(fields))]);
            }
        }
        let t0 = inner.shared.ticks.load(Ordering::Acquire);
        let deadline = Instant::now() + Duration::from_secs(5);
        while inner.shared.ticks.load(Ordering::Acquire) < t0 + 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Everything a live span needs to record itself at drop: the telemetry
/// handle, category, name, start instant, and structured args.
type ActiveSpan = (Arc<Telemetry>, &'static str, String, Instant, Vec<(String, Value)>);

/// RAII guard from [`Telemetry::span`] / the module-level [`span`];
/// records the span on drop.
#[must_use = "a span measures until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tel, cat, name, start, args)) = self.active.take() {
            tel.record_span_args(cat, &name, start, start.elapsed(), args);
        }
    }
}

// --------------------------------------------------------------------------
// Module-level helpers over the global handle (the instrumentation API)
// --------------------------------------------------------------------------

/// Resolves the env-configured global handle now instead of at the first
/// instrumentation point. Binaries whose hot path starts in layers below
/// this crate (the plan interpreter, kernel dispatch) call this at the top
/// of `main` so the probe gates ([`plan::set_profiling`],
/// [`backend::set_dispatch_counting`]) are already on when the first plan
/// executes; otherwise that work predates the gate flip and goes
/// unrecorded. Returns whether telemetry is enabled.
pub fn init() -> bool {
    on()
}

/// Opens a scoped span on the global handle; free when telemetry is off.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if on() {
        global().span(cat, name)
    } else {
        SpanGuard { active: None }
    }
}

/// Opens a scoped span on the global handle with structured catapult
/// `args`; free when telemetry is off (the args vec is never built on the
/// disabled path if the caller gates on [`on`] first).
pub fn span_args(
    cat: &'static str,
    name: impl Into<String>,
    args: Vec<(String, Value)>,
) -> SpanGuard {
    if on() {
        global().span_args(cat, name, args)
    } else {
        SpanGuard { active: None }
    }
}

/// Records a retroactive span on the global handle.
pub fn record_span(cat: &'static str, name: &str, start: Instant, dur: Duration) {
    if on() {
        global().record_span(cat, name, start, dur);
    }
}

/// Bumps a global counter.
pub fn counter(name: &str, delta: u64) {
    if on() {
        global().counter(name, delta);
    }
}

/// Records into a global [`LogHistogram`] series.
pub fn series(name: &str, value: u64) {
    if on() {
        global().series_record(name, value);
    }
}

/// Emits a stream event on the global handle.
pub fn event(name: &str, fields: Vec<(&str, Value)>) {
    if on() {
        global().event(name, fields);
    }
}

/// Flushes the global handle (see [`Telemetry::flush`]).
pub fn flush() {
    if on() {
        global().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ditto-telemetry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn disabled_handle_has_no_writer_thread_and_ignores_everything() {
        let tel = Arc::new(Telemetry::disabled());
        assert!(!tel.enabled());
        assert!(!tel.has_stream());
        // `to_files(None, None)` is the same non-spawning path.
        assert!(!Telemetry::to_files(None, None).enabled());
        let _g = tel.span("test", "never-recorded");
        tel.counter("x", 1);
        tel.series_record("y", 10);
        tel.record_span("test", "retro", Instant::now(), Duration::from_micros(5));
        tel.event("e", vec![]);
        tel.flush();
        assert!(tel.counters_snapshot().is_empty());
    }

    #[test]
    fn counters_and_series_accumulate() {
        let trace = temp("counters");
        let tel = Telemetry::to_files(None, Some(&trace));
        tel.counter("jobs", 2);
        tel.counter("jobs", 3);
        tel.counter("other", 1);
        tel.series_record("depth", 1);
        tel.series_record("depth", 100);
        assert_eq!(
            tel.counters_snapshot(),
            vec![("jobs".to_string(), 5), ("other".to_string(), 1)]
        );
        drop(tel);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn stream_gets_span_and_flush_snapshot_events() {
        let stream = temp("stream");
        let tel = Arc::new(Telemetry::to_files(Some(&stream), None));
        assert!(tel.has_stream());
        {
            let _g = tel.span("unit", "outer");
            std::thread::sleep(Duration::from_millis(2));
        }
        tel.counter("widgets", 7);
        tel.series_record("lat_us", 42);
        tel.flush();
        let text = std::fs::read_to_string(&stream).unwrap();
        let events: Vec<Value> =
            text.lines().map(|l| jsonio::parse(l.as_bytes()).expect("valid JSONL")).collect();
        let names: Vec<String> = events
            .iter()
            .map(|e| match e.get("event").unwrap() {
                Value::Str(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert!(names.iter().any(|n| n == "span"), "span event present: {names:?}");
        let counters = events
            .iter()
            .find(|e| matches!(e.get("event"), Ok(Value::Str(s)) if s == "counters"))
            .expect("counters snapshot");
        assert_eq!(counters.get("values").unwrap().get("widgets").unwrap(), &Value::Int(7));
        let series = events
            .iter()
            .find(|e| matches!(e.get("event"), Ok(Value::Str(s)) if s == "series"))
            .expect("series snapshot");
        assert_eq!(
            series.get("values").unwrap().get("lat_us").unwrap().get("count").unwrap(),
            &Value::Int(1)
        );
        drop(tel);
        let _ = std::fs::remove_file(&stream);
    }

    /// Satellite: every catapult doc parses, `ph`/`ts`/`dur` are
    /// well-formed, and spans nest properly per thread.
    #[test]
    fn catapult_export_is_valid_and_nests_per_thread() {
        let trace = temp("catapult");
        let tel = Arc::new(Telemetry::to_files(None, Some(&trace)));
        {
            let _outer = tel.span("unit", "outer");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = tel.span("unit", "inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let tel2 = Arc::clone(&tel);
        std::thread::spawn(move || {
            let _g = tel2.span("unit", "elsewhere");
            std::thread::sleep(Duration::from_millis(1));
        })
        .join()
        .unwrap();
        tel.flush();

        let doc = jsonio::parse(&std::fs::read(&trace).unwrap()).expect("catapult parses");
        let Value::Arr(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents must be an array")
        };
        assert!(events.len() >= 3);
        type TidSpans = Vec<(i128, i128, String)>;
        let mut by_tid: Vec<(i128, TidSpans)> = Vec::new();
        for e in events {
            let Value::Str(ph) = e.get("ph").unwrap() else { panic!("ph must be a string") };
            assert_eq!(ph, "X");
            let int = |k: &str| match e.get(k).unwrap() {
                Value::Int(i) => *i,
                other => panic!("{k} must be an integer, got {other:?}"),
            };
            let (ts, dur, tid) = (int("ts"), int("dur"), int("tid"));
            assert!(ts >= 0 && dur >= 0);
            let Value::Str(name) = e.get("name").unwrap() else { panic!("name") };
            match by_tid.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, v)) => v.push((ts, dur, name.clone())),
                None => by_tid.push((tid, vec![(ts, dur, name.clone())])),
            }
        }
        // Per thread: sorted by start, each span either nests in the open
        // span or starts after it ends (±1µs truncation slack).
        for (tid, mut spans) in by_tid {
            spans.sort_by_key(|&(ts, dur, _)| (ts, std::cmp::Reverse(dur)));
            let mut stack: Vec<(i128, i128)> = Vec::new();
            for (ts, dur, name) in spans {
                while let Some(&(_, end)) = stack.last() {
                    if ts + 1 >= end {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, end)) = stack.last() {
                    assert!(
                        ts + dur <= end + 1,
                        "span {name} on tid {tid} partially overlaps its parent"
                    );
                }
                stack.push((ts, ts + dur));
            }
        }
        // The nested pair landed on one thread with inner inside outer.
        drop(tel);
        let _ = std::fs::remove_file(&trace);
    }

    /// Span args ride both exporters: the catapult event carries an `args`
    /// object (omitted entirely when empty), and the stream `span` event
    /// mirrors it.
    #[test]
    fn span_args_land_in_catapult_and_stream() {
        let stream = temp("args-stream");
        let trace = temp("args-trace");
        let tel = Arc::new(Telemetry::to_files(Some(&stream), Some(&trace)));
        {
            let _g = tel.span_args(
                "unit",
                "with-args",
                vec![
                    ("design".to_string(), Value::Str("edge".into())),
                    ("model_index".to_string(), 3u64.to_json()),
                ],
            );
        }
        {
            let _g = tel.span("unit", "no-args");
        }
        tel.flush();

        let doc = jsonio::parse(&std::fs::read(&trace).unwrap()).expect("catapult parses");
        let Value::Arr(events) = doc.get("traceEvents").unwrap() else { panic!("traceEvents") };
        let find = |name: &str| {
            events
                .iter()
                .find(|e| matches!(e.get("name"), Ok(Value::Str(s)) if s == name))
                .unwrap_or_else(|| panic!("span {name} in trace"))
        };
        let with = find("with-args");
        let args = with.get("args").expect("args object on with-args");
        assert_eq!(args.get("design").unwrap(), &Value::Str("edge".into()));
        assert_eq!(args.get("model_index").unwrap(), &Value::Int(3));
        assert!(find("no-args").get("args").is_err(), "empty args must be omitted");

        let text = std::fs::read_to_string(&stream).unwrap();
        let span_ev = text
            .lines()
            .map(|l| jsonio::parse(l.as_bytes()).expect("valid JSONL"))
            .find(|e| {
                matches!(e.get("event"), Ok(Value::Str(s)) if s == "span")
                    && matches!(e.get("name"), Ok(Value::Str(s)) if s == "with-args")
            })
            .expect("stream span event for with-args");
        assert_eq!(span_ev.get("args").unwrap().get("design").unwrap(), &Value::Str("edge".into()));
        drop(tel);
        let _ = std::fs::remove_file(&stream);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn trace_checkpoint_survives_without_flush() {
        // SIGKILL-safety proxy: the idle cadence alone must produce a
        // loadable trace file.
        let trace = temp("idle-ckpt");
        let tel = Arc::new(Telemetry::to_files(None, Some(&trace)));
        tel.record_span("unit", "early", Instant::now(), Duration::from_micros(3));
        std::thread::sleep(Duration::from_millis(350));
        let doc = jsonio::parse(&std::fs::read(&trace).unwrap()).expect("checkpointed JSON");
        let Value::Arr(events) = doc.get("traceEvents").unwrap() else { panic!() };
        assert!(!events.is_empty());
        drop(tel);
        let _ = std::fs::remove_file(&trace);
    }
}
