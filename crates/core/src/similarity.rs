//! Value-similarity and value-range analyses (§II-B, Fig. 3 / Fig. 4).
//!
//! [`SimilarityHook`] observes the f32 inputs of every linear layer during
//! a reverse-process run and records, per layer and per adjacent step pair:
//!
//! * **temporal cosine similarity** between the layer's inputs at
//!   consecutive model calls (Fig. 3);
//! * **spatial cosine similarity** between consecutive rows of the operand
//!   matrix — im2col windows for convolutions, token rows for FC and
//!   attention (the Diffy-style spatial axis, Fig. 3b);
//! * **value range** of the original activations and of the temporal
//!   differences (Fig. 4).

use std::collections::HashMap;

use diffusion::{LayerOp, LinearHook, Node, NodeId, StepInfo};
use tensor::ops;
use tensor::{stats, Tensor};

/// Per-layer, per-step similarity and range records of one traced run.
#[derive(Debug, Clone, Default)]
pub struct SimilarityReport {
    /// Layer names in execution order.
    pub names: Vec<String>,
    /// `temporal_cosine[l][s]` — cosine between layer `l`'s inputs at model
    /// calls `s` and `s+1`.
    pub temporal_cosine: Vec<Vec<f32>>,
    /// `spatial_cosine[l][s]` — mean cosine between consecutive operand
    /// rows at model call `s`.
    pub spatial_cosine: Vec<Vec<f32>>,
    /// `act_range[l][s]` — value range (max−min) of the original operand.
    pub act_range: Vec<Vec<f32>>,
    /// `diff_range[l][s]` — value range of the temporal difference between
    /// calls `s` and `s+1`.
    pub diff_range: Vec<Vec<f32>>,
}

impl SimilarityReport {
    /// Mean temporal cosine over all layers and step pairs (a Fig. 3b bar).
    pub fn mean_temporal(&self) -> f64 {
        mean2(&self.temporal_cosine)
    }

    /// Mean spatial cosine over all layers and steps (a Fig. 3b bar).
    pub fn mean_spatial(&self) -> f64 {
        mean2(&self.spatial_cosine)
    }

    /// Mean activation value range (a Fig. 4b bar).
    pub fn mean_act_range(&self) -> f64 {
        mean2(&self.act_range)
    }

    /// Mean temporal-difference value range (a Fig. 4b bar).
    pub fn mean_diff_range(&self) -> f64 {
        mean2(&self.diff_range)
    }

    /// Index of the layer named `name`, if present.
    pub fn layer_named(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

fn mean2(v: &[Vec<f32>]) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u64);
    for row in v {
        for &x in row {
            sum += x as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The observing hook producing a [`SimilarityReport`].
#[derive(Debug, Default)]
pub struct SimilarityHook {
    report: SimilarityReport,
    index: HashMap<NodeId, usize>,
    prev: HashMap<NodeId, Tensor>,
}

impl SimilarityHook {
    /// Creates an empty hook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the hook, returning the report.
    pub fn into_report(self) -> SimilarityReport {
        self.report
    }

    fn layer_row(&mut self, node: &Node) -> usize {
        if let Some(&i) = self.index.get(&node.id) {
            return i;
        }
        let i = self.report.names.len();
        self.report.names.push(node.name.clone());
        self.report.temporal_cosine.push(Vec::new());
        self.report.spatial_cosine.push(Vec::new());
        self.report.act_range.push(Vec::new());
        self.report.diff_range.push(Vec::new());
        self.index.insert(node.id, i);
        i
    }
}

/// The primary operand in matrix form: im2col for convs, the tensor itself
/// for rank-2 operands.
fn operand_matrix(node: &Node, inputs: &[&Tensor]) -> Tensor {
    match &node.op {
        LayerOp::Conv2d { params, .. } => {
            ops::im2col(inputs[0], *params).expect("conv input is rank 3")
        }
        _ => inputs[0].clone(),
    }
}

/// Mean cosine similarity between consecutive rows of a rank-2 tensor.
fn row_similarity(m: &Tensor) -> f32 {
    let rows = m.dims()[0];
    if rows < 2 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    for r in 1..rows {
        sum += stats::cosine_similarity(m.row(r - 1), m.row(r)) as f64;
    }
    (sum / (rows - 1) as f64) as f32
}

impl LinearHook for SimilarityHook {
    fn observe(&mut self, node: &Node, _step: StepInfo, inputs: &[&Tensor], _out: &Tensor) {
        if !node.op.is_linear_layer() {
            return;
        }
        let mat = operand_matrix(node, inputs);
        let row = self.layer_row(node);
        self.report.act_range[row].push(stats::value_range(mat.as_slice()));
        self.report.spatial_cosine[row].push(row_similarity(&mat));
        if let Some(prev) = self.prev.get(&node.id) {
            if prev.dims() == mat.dims() {
                self.report.temporal_cosine[row].push(stats::tensor_cosine(prev, &mat));
                let diff: Vec<f32> =
                    mat.as_slice().iter().zip(prev.as_slice()).map(|(&a, &b)| a - b).collect();
                self.report.diff_range[row].push(stats::value_range(&diff));
            }
        }
        self.prev.insert(node.id, mat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffusion::{DiffusionModel, ModelKind, ModelScale};

    fn report(kind: ModelKind) -> SimilarityReport {
        let model = DiffusionModel::build(kind, ModelScale::Tiny, 21);
        let mut hook = SimilarityHook::new();
        model.run_reverse(1, &mut hook).unwrap();
        hook.into_report()
    }

    #[test]
    fn temporal_similarity_is_high_and_beats_spatial() {
        // The paper's core claim (Fig. 3b): temporal similarity ≈ 0.98,
        // far above spatial similarity. Temporal similarity scales with
        // step density, so this test uses a denser schedule than Tiny's
        // default (the Small-scale experiments use the full paper counts).
        let mut model = DiffusionModel::build(ModelKind::Bed, ModelScale::Tiny, 21);
        model.steps = 40;
        let mut hook = SimilarityHook::new();
        model.run_reverse(1, &mut hook).unwrap();
        let r = hook.into_report();
        let t = r.mean_temporal();
        let s = r.mean_spatial();
        assert!(t > 0.85, "temporal similarity {t}");
        assert!(t > s, "temporal {t} must exceed spatial {s}");
    }

    #[test]
    fn diff_range_is_narrower_than_act_range() {
        // Fig. 4b: temporal differences have a much narrower range.
        let r = report(ModelKind::Ddpm);
        let act = r.mean_act_range();
        let diff = r.mean_diff_range();
        assert!(diff < act, "diff range {diff} must be below act range {act}");
    }

    #[test]
    fn paper_named_layers_exist() {
        let r = report(ModelKind::Sdm);
        assert!(r.layer_named("conv-in").is_some());
        assert!(r.layer_named("up.0.0.skip").is_some());
    }

    #[test]
    fn per_layer_counts_match_steps() {
        let model = DiffusionModel::build(ModelKind::Img, ModelScale::Tiny, 22);
        let calls = model.model_calls();
        let mut hook = SimilarityHook::new();
        model.run_reverse(0, &mut hook).unwrap();
        let r = hook.into_report();
        for l in 0..r.names.len() {
            assert_eq!(r.act_range[l].len(), calls);
            assert_eq!(r.temporal_cosine[l].len(), calls - 1);
        }
    }

    #[test]
    fn row_similarity_edge_cases() {
        let single = Tensor::zeros(&[1, 4]);
        assert_eq!(row_similarity(&single), 1.0);
        let anti = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0], &[2, 2]).unwrap();
        assert!((row_similarity(&anti) + 1.0).abs() < 1e-6);
    }
}
