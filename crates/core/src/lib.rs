//! The Ditto algorithm (HPCA 2025) — temporal difference processing for
//! quantized diffusion models.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`runner`] — the Ditto execution engine: grid-pinned A8W8 quantized
//!   execution of every linear layer, the exact three-stage difference path
//!   of Fig. 7 (delta → reduced-bit-width sparse matmul → summation), the
//!   attention decomposition `Q_t·K_tᵀ = Q_{t+1}K_{t+1}ᵀ + Q_t·ΔKᵀ +
//!   ΔQ·K_{t+1}ᵀ`, and workload-trace capture through executor hooks.
//! * [`defo`] — Defo's static computing-graph analysis: value-domain
//!   propagation, difference-calculation and summation boundaries, and the
//!   non-linear kinds at each boundary (used to model Cambricon-D's
//!   sign-mask coverage). The *runtime* half of Defo (cycle-based execution
//!   type selection) lives in the `accel` crate next to the cycle model it
//!   compares.
//! * [`similarity`] — the §II-B analyses: temporal/spatial cosine
//!   similarity and value ranges (Fig. 3, Fig. 4).
//! * [`analysis`] — bit-width requirement, BOPs and memory-overhead
//!   aggregations (Fig. 5, Fig. 6, Fig. 8).
//! * [`trace`] — the per-layer, per-step statistics format every consumer
//!   shares.
//! * [`binio`] / [`jsonio`] — the versioned little-endian binary codec the
//!   trace cache uses, and the legacy JSON codec kept for migration and
//!   human inspection.
//! * [`hist`] / [`jsonl`] — the fixed-bucket log-scale histogram and the
//!   background JSONL writer thread underpinning the serve observability
//!   layer (`serve::obs`) and the `perfbench` perf artifacts.
//! * [`telemetry`] — the whole-stack telemetry core: scoped spans,
//!   counters, histogram series, per-opcode plan profiles and
//!   kernel-dispatch counts drained from the compute crates, exported as
//!   the shared `DITTO_OBS_STREAM` JSONL stream and a `DITTO_TRACE_FILE`
//!   chrome://tracing (catapult) JSON trace.
//!
//! # Example
//!
//! ```
//! use diffusion::{DiffusionModel, ModelKind, ModelScale};
//! use ditto_core::runner::{trace_model, ExecPolicy};
//! use ditto_core::trace::StatView;
//!
//! let model = DiffusionModel::build(ModelKind::Ddpm, ModelScale::Tiny, 42);
//! let (trace, _sample) = trace_model(&model, 0, ExecPolicy::Dense)?;
//! let temporal = trace.merged(StatView::Temporal);
//! // Most temporal differences fit in 4 bits or are zero.
//! assert!(temporal.le4_ratio() > 0.5);
//! # Ok::<(), tensor::TensorError>(())
//! ```

pub mod analysis;
pub mod binio;
pub mod defo;
pub mod hist;
pub mod jsonio;
pub mod jsonl;
pub mod runner;
pub mod similarity;
pub mod telemetry;
pub mod trace;

pub use defo::{analyze, DefoStatic, Domain, LayerBoundary};
pub use runner::{build_quantizer, trace_model, CalibrationHook, DittoHook, ExecPolicy};
pub use similarity::{SimilarityHook, SimilarityReport};
pub use trace::{LayerMeta, LinearKind, StatView, StepStats, SubOp, WorkloadTrace};
