//! Workload traces: per-layer, per-step value statistics.
//!
//! One reverse-process run under the [`crate::runner::DittoHook`] produces a
//! [`WorkloadTrace`]: static metadata for every linear layer
//! ([`LayerMeta`]) plus, for every model call, the bit-width histograms of
//! the layer's operands under the three processing methods the paper
//! compares (original activations, spatial differences, temporal
//! differences). Everything downstream — the Fig. 5/6/8 analyses and the
//! cycle-level hardware simulator — consumes this trace, mirroring the
//! paper's methodology of driving the Sparse-DySta simulator with real
//! activation data captured through hooks (§VI-A).

use diffusion::NodeId;
use quant::BitWidthHistogram;

/// Which kind of linear layer a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinearKind {
    /// 2-D convolution (classified in the im2col domain).
    Conv,
    /// Fully connected layer.
    Fc,
    /// Attention score matmul `Q·Kᵀ`.
    MatmulQk,
    /// Attention value matmul `P·V`.
    MatmulPv,
}

impl LinearKind {
    /// Whether this is one of the two attention matmuls (both operands
    /// change across steps → two difference sub-operations, §IV-A).
    pub fn is_attention(self) -> bool {
        matches!(self, LinearKind::MatmulQk | LinearKind::MatmulPv)
    }
}

/// A difference sub-operation of a layer (§IV-A).
///
/// Convolution / FC layers have exactly one (`ΔX × W`). Attention layers
/// have two: `Q_t·ΔKᵀ` (operand ΔK) and `ΔQ·K_{t+1}ᵀ` (operand ΔQ), and
/// analogously for `P·V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubOp {
    /// Label for reports ("dx", "dk", "dq", "dv", "dp").
    pub label: String,
    /// Number of classified operand elements.
    pub elems: u64,
    /// MACs each operand element participates in.
    pub reuse: u64,
}

impl SubOp {
    /// MACs of this sub-operation.
    pub fn macs(&self) -> u64 {
        self.elems * self.reuse
    }
}

/// Static (step-invariant) description of one linear layer.
#[derive(Debug, Clone)]
pub struct LayerMeta {
    /// Graph node id.
    pub node: NodeId,
    /// Layer name (e.g. `conv-in`, `up.0.0.skip`).
    pub name: String,
    /// Layer kind.
    pub kind: LinearKind,
    /// Dense MACs of one execution.
    pub macs: u64,
    /// Classified primary-operand elements for original-activation /
    /// spatial processing (im2col elements for convs, input elements for
    /// FC, Q elements for attention).
    pub elems: u64,
    /// MACs per primary-operand element (`macs / elems`).
    pub reuse: u64,
    /// Difference sub-operations in temporal-difference mode.
    pub subops: Vec<SubOp>,
    /// Input activation bytes (8-bit, raw tensor — not im2col-expanded).
    pub in_bytes: u64,
    /// Weight bytes (0 for attention matmuls).
    pub weight_bytes: u64,
    /// Output activation bytes (8-bit, after VPU re-quantization).
    pub out_bytes: u64,
    /// Defo static analysis: the layer's operand arrives in the original
    /// domain, so temporal-difference mode must load the stored previous
    /// input and subtract (extra memory traffic).
    pub needs_diff_calc: bool,
    /// Defo static analysis: the layer's difference-domain output must be
    /// summed with the stored previous output before a non-linear consumer
    /// (extra memory traffic).
    pub needs_summation: bool,
    /// Kinds of non-linear producers feeding this layer (empty if the
    /// operand stays in the difference domain).
    pub in_boundary: Vec<String>,
    /// Kinds of non-linear consumers of this layer's difference region.
    pub out_boundary: Vec<String>,
}

impl LayerMeta {
    /// Bytes per element of inter-step *output* state: summation must add
    /// the previous pre-non-linearity output at partial-sum precision (the
    /// storage cost sign-mask data flow was invented to avoid), modeled as
    /// 16-bit.
    pub const OUTPUT_STATE_BYTES: u64 = 2;

    /// Extra bytes moved per step when this layer runs in
    /// temporal-difference mode: store+load of the previous input at a
    /// difference-calculation boundary, store+load of the previous output
    /// (at [`Self::OUTPUT_STATE_BYTES`] per element) at a summation
    /// boundary (§IV-B; the source of Fig. 8's memory-overhead ratio).
    ///
    /// Attention matmuls always pay the input side: their decomposition
    /// `Q_t·ΔKᵀ + ΔQ·K_{t+1}ᵀ` consumes the *original* operands of both
    /// steps ("treated as weight", §IV-A), so current operands must persist
    /// to the next step and previous ones be re-loaded, regardless of the
    /// producing layers' value domain.
    pub fn temporal_extra_bytes(&self) -> u64 {
        let input_side =
            if self.needs_diff_calc || self.kind.is_attention() { 2 * self.in_bytes } else { 0 };
        let output_side =
            if self.needs_summation { 2 * Self::OUTPUT_STATE_BYTES * self.out_bytes } else { 0 };
        input_side + output_side
    }

    /// Base bytes moved by any processing mode: input + weights + output.
    pub fn base_bytes(&self) -> u64 {
        self.in_bytes + self.weight_bytes + self.out_bytes
    }

    /// Whether the sign-mask data flow of Cambricon-D can absorb this
    /// layer's boundary non-linearities (it supports only SiLU and Group
    /// Normalization; §V / §VII).
    pub fn sign_mask_covers(&self) -> bool {
        self.in_boundary
            .iter()
            .chain(&self.out_boundary)
            .all(|k| *k == "silu" || *k == "group_norm")
    }
}

/// Per-step, per-layer operand statistics.
#[derive(Debug, Clone, Default)]
pub struct StepStats {
    /// Bit-width histogram of the original (quantized) primary operand.
    pub act: BitWidthHistogram,
    /// Histogram under spatial (row-wise, Diffy-style) differencing —
    /// includes the dense base row classified at its activation bit-width.
    pub spa: BitWidthHistogram,
    /// Histograms of each temporal-difference sub-operation's operand;
    /// `None` for the first model call (no previous step exists).
    pub temporal: Option<Vec<BitWidthHistogram>>,
}

impl StepStats {
    /// Merged temporal histogram across sub-operations, if present.
    pub fn temporal_merged(&self) -> Option<BitWidthHistogram> {
        self.temporal.as_ref().map(|v| {
            let mut h = BitWidthHistogram::new();
            for s in v {
                h.merge(s);
            }
            h
        })
    }
}

/// A complete per-run workload trace.
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    /// Table I abbreviation of the traced model.
    pub model: String,
    /// Static metadata per linear layer (execution order).
    pub layers: Vec<LayerMeta>,
    /// `steps[s][l]` = statistics of layer `l` at model call `s`.
    pub steps: Vec<Vec<StepStats>>,
}

impl WorkloadTrace {
    /// Number of model calls traced.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of linear layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total dense MACs of one model call.
    pub fn macs_per_step(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Merged histogram over all layers and all steps for a chosen view.
    pub fn merged(&self, view: StatView) -> BitWidthHistogram {
        let mut h = BitWidthHistogram::new();
        for step in &self.steps {
            for s in step {
                match view {
                    StatView::Activation => h.merge(&s.act),
                    StatView::Spatial => h.merge(&s.spa),
                    StatView::Temporal => {
                        if let Some(m) = s.temporal_merged() {
                            h.merge(&m);
                        } else {
                            // First step executes with original activations.
                            h.merge(&s.act);
                        }
                    }
                }
            }
        }
        h
    }
}

/// Which operand view to aggregate (the three bars of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatView {
    /// Original activations.
    Activation,
    /// Spatial (Diffy-style row) differences.
    Spatial,
    /// Temporal (adjacent-time-step) differences.
    Temporal,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(in_b: u64, out_b: u64, diff: bool, sum: bool) -> LayerMeta {
        LayerMeta {
            node: 0,
            name: "l".into(),
            kind: LinearKind::Fc,
            macs: 100,
            elems: 10,
            reuse: 10,
            subops: vec![SubOp { label: "dx".into(), elems: 10, reuse: 10 }],
            in_bytes: in_b,
            weight_bytes: 5,
            out_bytes: out_b,
            needs_diff_calc: diff,
            needs_summation: sum,
            in_boundary: vec![],
            out_boundary: vec![],
        }
    }

    #[test]
    fn extra_bytes_by_boundaries() {
        // Input side: 2 × in_bytes. Output side: 2 × 2 B/elem × out_bytes
        // (16-bit partial-sum state).
        assert_eq!(meta(10, 20, true, true).temporal_extra_bytes(), 20 + 80);
        assert_eq!(meta(10, 20, true, false).temporal_extra_bytes(), 20);
        assert_eq!(meta(10, 20, false, true).temporal_extra_bytes(), 80);
        assert_eq!(meta(10, 20, false, false).temporal_extra_bytes(), 0);
        assert_eq!(meta(10, 20, false, false).base_bytes(), 35);
    }

    #[test]
    fn attention_always_pays_input_side() {
        let mut m = meta(10, 20, false, false);
        m.kind = LinearKind::MatmulQk;
        assert_eq!(m.temporal_extra_bytes(), 20);
    }

    #[test]
    fn sign_mask_coverage() {
        let mut m = meta(1, 1, true, true);
        m.in_boundary = vec!["silu".into()];
        m.out_boundary = vec!["group_norm".into()];
        assert!(m.sign_mask_covers());
        m.out_boundary.push("softmax".into());
        assert!(!m.sign_mask_covers());
    }

    #[test]
    fn subop_macs() {
        assert_eq!(SubOp { label: "dk".into(), elems: 4, reuse: 3 }.macs(), 12);
    }

    #[test]
    fn merged_views_fall_back_to_act_for_first_step() {
        let mut s0 = StepStats::default();
        s0.act.push(quant::BitWidthClass::Full8);
        let mut s1 = StepStats::default();
        s1.act.push(quant::BitWidthClass::Full8);
        s1.temporal = Some(vec![BitWidthHistogram::from_deltas(&[0])]);
        let trace = WorkloadTrace {
            model: "TEST".into(),
            layers: vec![meta(1, 1, true, true)],
            steps: vec![vec![s0], vec![s1]],
        };
        let t = trace.merged(StatView::Temporal);
        assert_eq!(t.full8, 1); // step 0 act fallback
        assert_eq!(t.zero, 1); // step 1 temporal
        let a = trace.merged(StatView::Activation);
        assert_eq!(a.full8, 2);
    }

    #[test]
    fn attention_kinds() {
        assert!(LinearKind::MatmulQk.is_attention());
        assert!(!LinearKind::Conv.is_attention());
    }
}
