//! The Ditto execution engine: quantized linear-layer execution with
//! temporal-difference processing and workload tracing.
//!
//! [`DittoHook`] plugs into the diffusion executor's
//! [`LinearHook`] interface and:
//!
//! 1. executes every linear layer in the quantized integer domain (A8W8,
//!    §VI-A) — convolutions via im2col, FC directly, attention matmuls on
//!    two quantized operands;
//! 2. maintains per-layer *grid-pinned* activation scales so temporal
//!    differences are exact integer subtractions (the Encoding Unit's
//!    subtractor, Fig. 11);
//! 3. optionally computes outputs through the three-stage difference path
//!    (delta → sparse low-bit matmul → summation, Fig. 7), which is
//!    bit-identical to dense integer execution — asserted in tests;
//! 4. records the [`WorkloadTrace`] of per-layer, per-step bit-width
//!    histograms that drives every analysis figure and the hardware
//!    simulator.
//!
//! The integer kernels the hook drives (`quant::kernels::*`) dispatch
//! through the pluggable kernel-backend layer (`tensor::backend`:
//! scalar / tiled / explicit-SIMD). Backends are bit-identical, so traces
//! and samples — and therefore the trace cache, whose fingerprints cover
//! only the model definition — are backend-invariant; selecting a backend
//! (`DITTO_KERNEL_BACKEND` or the serve protocol's `backend` field) only
//! changes tracing speed.

use std::collections::HashMap;

use diffusion::{DiffusionModel, LayerOp, LinearHook, Node, NodeId, StepInfo};
use quant::kernels::{attention_delta_scores, delta_matmul_update, int_matmul, widen};
use quant::{BitWidthHistogram, CalibrationTable, Calibrator, QTensor, Quantizer};
use tensor::ops::Conv2dParams;
use tensor::{stats, Tensor};

use crate::defo::{analyze, LayerBoundary};
use crate::trace::{LayerMeta, LinearKind, StepStats, SubOp, WorkloadTrace};

/// Headroom multiplier applied to grid scales pinned from the first step of
/// dynamically quantized models, absorbing the gradual range drift across
/// the reverse process (§II).
const DYNAMIC_GRID_HEADROOM: f32 = 1.25;

/// How [`DittoHook`] computes linear-layer outputs. Both policies are
/// numerically identical (difference processing is exact, §IV-A); the
/// temporal policy actually walks the three-stage path of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Dense integer matmuls — fastest host execution for trace capture.
    Dense,
    /// Stage-1/2/3 temporal difference processing from the second model
    /// call onward.
    TemporalDelta,
}

/// Quantized weight cache entry for a conv/FC layer.
#[derive(Debug, Clone)]
struct QWeight {
    /// `[k, n]` weight levels (k = reduction dim).
    data: Vec<i8>,
    scale: f32,
    k: usize,
    n: usize,
    bias: Option<Vec<f32>>,
}

/// Per-layer mutable state across steps.
#[derive(Debug, Clone, Default)]
struct LayerState {
    /// Pinned activation grid scale (primary operand).
    grid: Option<f32>,
    /// Pinned grid of the secondary operand (attention only).
    grid2: Option<f32>,
    /// Previous-step primary operand levels (im2col domain for convs).
    prev_a: Vec<i8>,
    /// Grid scale `prev_a` (and `prev_acc`) were produced on.
    prev_a_grid: f32,
    /// Previous-step secondary operand levels (attention only).
    prev_b: Vec<i8>,
    /// Grid scale `prev_b` was produced on.
    prev_b_grid: f32,
    /// Previous-step output accumulators.
    prev_acc: Vec<i32>,
}

/// Re-quantizes stored levels from `old` onto the `new` grid (exact in f32,
/// then rounded) — the boundary cost of calibrated grids that change
/// across time-step clusters (§VI-A).
fn regrid_levels(levels: &[i8], old: f32, new: f32) -> Vec<i8> {
    let ratio = old / new;
    levels.iter().map(|&v| (v as f32 * ratio).round().clamp(-127.0, 127.0) as i8).collect()
}

/// The Ditto execution hook. See the module docs.
#[derive(Debug)]
pub struct DittoHook {
    quantizer: Quantizer,
    policy: ExecPolicy,
    boundaries: HashMap<NodeId, LayerBoundary>,
    weights: HashMap<NodeId, QWeight>,
    states: HashMap<NodeId, LayerState>,
    layer_index: HashMap<NodeId, usize>,
    metas: Vec<LayerMeta>,
    steps: Vec<Vec<StepStats>>,
    model_abbr: &'static str,
}

impl DittoHook {
    /// Creates a hook for `model`, running Defo's static dependency
    /// analysis up front.
    pub fn new(model: &DiffusionModel, quantizer: Quantizer, policy: ExecPolicy) -> Self {
        let defo = analyze(&model.graph);
        let boundaries = defo.boundaries.into_iter().map(|b| (b.node, b)).collect();
        DittoHook {
            quantizer,
            policy,
            boundaries,
            weights: HashMap::new(),
            states: HashMap::new(),
            layer_index: HashMap::new(),
            metas: Vec::new(),
            steps: Vec::new(),
            model_abbr: model.kind.abbr(),
        }
    }

    /// Consumes the hook, returning the captured workload trace.
    pub fn into_trace(self) -> WorkloadTrace {
        WorkloadTrace { model: self.model_abbr.to_string(), layers: self.metas, steps: self.steps }
    }

    fn ensure_step_row(&mut self, step: usize) {
        while self.steps.len() <= step {
            self.steps.push(Vec::new());
        }
    }

    /// Resolves (or pins) the activation grid scale for a layer operand.
    fn grid_scale(&mut self, node: NodeId, step: usize, x: &Tensor, secondary: bool) -> f32 {
        // Static calibration tables already cluster steps; use their scale
        // directly (constant within a cluster, so deltas stay exact).
        // Secondary attention operands are keyed off the same node with a
        // large offset to keep their calibration records distinct.
        let key = if secondary { node + 1_000_000 } else { node };
        if let Some(table) = self.quantizer.table() {
            if let Some(s) = table.scale_for(key, step) {
                return s;
            }
        }
        let st = self.states.entry(node).or_default();
        let slot = if secondary { &mut st.grid2 } else { &mut st.grid };
        if let Some(s) = *slot {
            return s;
        }
        let amax = stats::abs_max(x.as_slice());
        let s = if amax == 0.0 {
            1.0
        } else {
            amax * DYNAMIC_GRID_HEADROOM / quant::qtensor::QMAX as f32
        };
        *slot = Some(s);
        s
    }

    fn quantize_weight(&mut self, node: &Node) -> QWeight {
        if let Some(w) = self.weights.get(&node.id) {
            return w.clone();
        }
        let qw = match &node.op {
            LayerOp::Conv2d { weight, bias, params } => {
                let c_out = weight.dims()[0];
                let k_red = weight.dims()[1] * params.kernel * params.kernel;
                // Reshape [C_out, C_in*K*K] → transpose to [k, n].
                let q = QTensor::quantize_dynamic(weight);
                let mut data = vec![0i8; k_red * c_out];
                for co in 0..c_out {
                    for kk in 0..k_red {
                        data[kk * c_out + co] = q.data()[co * k_red + kk];
                    }
                }
                QWeight {
                    data,
                    scale: q.scale(),
                    k: k_red,
                    n: c_out,
                    bias: bias.as_ref().map(|b| b.as_slice().to_vec()),
                }
            }
            LayerOp::Linear { weight, bias } => {
                let q = QTensor::quantize_dynamic(weight);
                QWeight {
                    data: q.data().to_vec(),
                    scale: q.scale(),
                    k: weight.dims()[0],
                    n: weight.dims()[1],
                    bias: bias.as_ref().map(|b| b.as_slice().to_vec()),
                }
            }
            _ => unreachable!("attention matmuls have no weights"),
        };
        self.weights.insert(node.id, qw.clone());
        qw
    }

    fn boundary(&self, node: NodeId) -> (bool, bool, Vec<String>, Vec<String>) {
        match self.boundaries.get(&node) {
            Some(b) => (
                b.needs_diff_calc,
                b.needs_summation,
                b.in_boundary.clone(),
                b.out_boundary.clone(),
            ),
            None => (true, true, Vec::new(), Vec::new()),
        }
    }

    /// Registers layer metadata on first encounter; returns the layer row
    /// index.
    #[allow(clippy::too_many_arguments)]
    fn register_layer(
        &mut self,
        node: &Node,
        kind: LinearKind,
        macs: u64,
        elems: u64,
        reuse: u64,
        subops: Vec<SubOp>,
        in_bytes: u64,
        weight_bytes: u64,
        out_bytes: u64,
    ) -> usize {
        if let Some(&idx) = self.layer_index.get(&node.id) {
            return idx;
        }
        let (needs_diff_calc, needs_summation, in_boundary, out_boundary) = self.boundary(node.id);
        let idx = self.metas.len();
        self.metas.push(LayerMeta {
            node: node.id,
            name: node.name.clone(),
            kind,
            macs,
            elems,
            reuse,
            subops,
            in_bytes,
            weight_bytes,
            out_bytes,
            needs_diff_calc,
            needs_summation,
            in_boundary,
            out_boundary,
        });
        self.layer_index.insert(node.id, idx);
        idx
    }

    fn record_stats(&mut self, step: usize, layer_idx: usize, stats: StepStats) {
        self.ensure_step_row(step);
        let row = &mut self.steps[step];
        while row.len() <= layer_idx {
            row.push(StepStats::default());
        }
        row[layer_idx] = stats;
    }

    /// Executes a conv/FC layer in the integer domain and records stats.
    ///
    /// `operand` is the flattened `[m, k]` classified operand (im2col for
    /// convs), `raw_in_elems` the raw input tensor size for byte
    /// accounting.
    #[allow(clippy::too_many_arguments)]
    fn run_weighted(
        &mut self,
        node: &Node,
        step: usize,
        kind: LinearKind,
        operand_f32: &Tensor, // [m, k]
        raw_in_elems: u64,
        qw: &QWeight,
    ) -> (Vec<i32>, f32) {
        let m = operand_f32.dims()[0];
        let (k, n) = (qw.k, qw.n);
        let grid = self.grid_scale(node.id, step, operand_f32, false);
        let qa = QTensor::quantize_with_scale(operand_f32, grid);
        let macs = (m * k * n) as u64;
        let elems = (m * k) as u64;
        let idx = self.register_layer(
            node,
            kind,
            macs,
            elems,
            n as u64,
            vec![SubOp { label: "dx".into(), elems, reuse: n as u64 }],
            raw_in_elems,
            (k * n) as u64,
            (m * n) as u64,
        );

        let st = self.states.entry(node.id).or_default();
        let has_prev = st.prev_a.len() == qa.len();
        // Grid boundary (Q-Diffusion cluster change / TDQ step change):
        // re-quantize the stored previous operand onto the current grid
        // and rebuild its accumulators so the difference stays exact.
        if has_prev && st.prev_a_grid != grid {
            st.prev_a = regrid_levels(&st.prev_a, st.prev_a_grid, grid);
            st.prev_acc = int_matmul(&widen(&st.prev_a), &qw.data, m, k, n);
            st.prev_a_grid = grid;
        }
        // Statistics under the three processing views.
        let act = BitWidthHistogram::from_activations(qa.data());
        let spa = spatial_hist(qa.data(), m, k);
        let (temporal, deltas) = if has_prev {
            let d: Vec<i16> =
                qa.data().iter().zip(&st.prev_a).map(|(&c, &p)| c as i16 - p as i16).collect();
            (Some(vec![BitWidthHistogram::from_deltas(&d)]), Some(d))
        } else {
            (None, None)
        };

        // Output accumulators: dense, or via the three-stage delta path.
        let acc = match (&deltas, self.policy) {
            (Some(d), ExecPolicy::TemporalDelta) => {
                delta_matmul_update(&st.prev_acc, d, &qw.data, m, k, n)
            }
            _ => int_matmul(&widen(qa.data()), &qw.data, m, k, n),
        };
        st.prev_a = qa.data().to_vec();
        st.prev_a_grid = grid;
        st.prev_acc = acc.clone();
        let out_scale = grid * qw.scale;
        self.record_stats(step, idx, StepStats { act, spa, temporal });
        (acc, out_scale)
    }

    /// Executes an attention matmul (`Q·Kᵀ` or `P·V`) in the integer
    /// domain and records two-sub-op difference statistics.
    fn run_attention(
        &mut self,
        node: &Node,
        step: usize,
        kind: LinearKind,
        a_f32: &Tensor, // Q [m, d] (or P [m, s])
        b_f32: &Tensor, // K [n, d] (or V [s, d]) — reduced along its matching dim
    ) -> (Vec<i32>, f32, usize, usize) {
        // Dimensions: QK: a=[m,d], b=[n,d], out [m,n] reducing d.
        //             PV: a=[m,s], b=[s,d], out [m,d] reducing s.
        let (m, red, n, b_is_transposed) = match kind {
            LinearKind::MatmulQk => (a_f32.dims()[0], a_f32.dims()[1], b_f32.dims()[0], true),
            LinearKind::MatmulPv => (a_f32.dims()[0], a_f32.dims()[1], b_f32.dims()[1], false),
            _ => unreachable!(),
        };
        let grid_a = self.grid_scale(node.id, step, a_f32, false);
        let grid_b = self.grid_scale(node.id, step, b_f32, true);
        let qa = QTensor::quantize_with_scale(a_f32, grid_a);
        let qb = QTensor::quantize_with_scale(b_f32, grid_b);
        // Bring B into [red, n] layout for the matmul.
        let b_mat: Vec<i8> = if b_is_transposed {
            // K is [n, red] → transpose.
            let mut t = vec![0i8; red * n];
            for r in 0..n {
                for c in 0..red {
                    t[c * n + r] = qb.data()[r * red + c];
                }
            }
            t
        } else {
            qb.data().to_vec()
        };

        let macs = (m * red * n) as u64;
        let a_elems = (m * red) as u64;
        let b_elems = (red * n) as u64;
        let (sub_b_label, sub_a_label) = match kind {
            LinearKind::MatmulQk => ("dk", "dq"),
            _ => ("dv", "dp"),
        };
        let idx = self.register_layer(
            node,
            kind,
            macs,
            a_elems,
            n as u64,
            vec![
                SubOp { label: sub_b_label.into(), elems: b_elems, reuse: m as u64 },
                SubOp { label: sub_a_label.into(), elems: a_elems, reuse: n as u64 },
            ],
            a_elems + b_elems,
            0,
            (m * n) as u64,
        );

        let st = self.states.entry(node.id).or_default();
        let has_prev = st.prev_a.len() == qa.len() && st.prev_b.len() == b_mat.len();
        if has_prev && (st.prev_a_grid != grid_a || st.prev_b_grid != grid_b) {
            st.prev_a = regrid_levels(&st.prev_a, st.prev_a_grid, grid_a);
            st.prev_b = regrid_levels(&st.prev_b, st.prev_b_grid, grid_b);
            let a16: Vec<i16> = st.prev_a.iter().map(|&v| v as i16).collect();
            let b16: Vec<i16> = st.prev_b.iter().map(|&v| v as i16).collect();
            st.prev_acc = quant::kernels::int_scores(&a16, &b16, m, red, n);
            st.prev_a_grid = grid_a;
            st.prev_b_grid = grid_b;
        }
        let act = BitWidthHistogram::from_activations(qa.data());
        let spa = spatial_hist(qa.data(), m, red);
        let (temporal, delta_pair) = if has_prev {
            let da: Vec<i16> =
                qa.data().iter().zip(&st.prev_a).map(|(&c, &p)| c as i16 - p as i16).collect();
            let db: Vec<i16> =
                b_mat.iter().zip(&st.prev_b).map(|(&c, &p)| c as i16 - p as i16).collect();
            (
                Some(vec![
                    BitWidthHistogram::from_deltas(&db),
                    BitWidthHistogram::from_deltas(&da),
                ]),
                Some((da, db)),
            )
        } else {
            (None, None)
        };

        let acc = match (&delta_pair, self.policy) {
            (Some((da, db)), ExecPolicy::TemporalDelta) => {
                // scores_t = prev + A_t·ΔB + ΔA·B_prev (§IV-A).
                let a_t = widen(qa.data());
                let b_prev: Vec<i16> = st.prev_b.iter().map(|&v| v as i16).collect();
                attention_delta_scores(&st.prev_acc, &a_t, da, &b_prev, db, m, red, n)
            }
            _ => int_matmul(&widen(qa.data()), &b_mat_as_i8(&b_mat), m, red, n),
        };
        st.prev_a = qa.data().to_vec();
        st.prev_a_grid = grid_a;
        st.prev_b = b_mat;
        st.prev_b_grid = grid_b;
        st.prev_acc = acc.clone();
        self.record_stats(step, idx, StepStats { act, spa, temporal });
        (acc, grid_a * grid_b, m, n)
    }
}

fn b_mat_as_i8(v: &[i8]) -> Vec<i8> {
    v.to_vec()
}

/// Spatial (row-wise) difference histogram: first row classified at its
/// activation bit-width, later rows as differences from the previous row —
/// the Diffy method extended to FC/attention rows (§III-B).
fn spatial_hist(data: &[i8], rows: usize, cols: usize) -> BitWidthHistogram {
    let mut h = BitWidthHistogram::new();
    if rows == 0 || cols == 0 {
        return h;
    }
    for &v in &data[..cols] {
        h.push(quant::BitWidthClass::of_i8(v));
    }
    for r in 1..rows {
        for c in 0..cols {
            let d = data[r * cols + c] as i16 - data[(r - 1) * cols + c] as i16;
            h.push(quant::BitWidthClass::of(d));
        }
    }
    h
}

/// im2col on quantized levels; padding contributes exact zeros.
fn im2col_i8(
    data: &[i8],
    c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
) -> (Vec<i8>, usize, usize) {
    let ho = p.out_extent(h);
    let wo = p.out_extent(w);
    let k = p.kernel;
    let cols = c * k * k;
    let mut out = vec![0i8; ho * wo * cols];
    for oy in 0..ho {
        for ox in 0..wo {
            let row = oy * wo + ox;
            for ci in 0..c {
                for ky in 0..k {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    for kx in 0..k {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        let col = (ci * k + ky) * k + kx;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            out[row * cols + col] =
                                data[ci * h * w + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    (out, ho * wo, cols)
}

impl LinearHook for DittoHook {
    fn compute_linear(
        &mut self,
        node: &Node,
        step: StepInfo,
        inputs: &[&Tensor],
    ) -> Option<Tensor> {
        let s = step.step_index;
        match &node.op {
            LayerOp::Conv2d { params, .. } => {
                let x = inputs[0];
                let (c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                let p = *params;
                let qw = self.quantize_weight(node);
                // Quantize the raw input once, then expand to im2col so
                // padding zeros and duplicated taps are exact.
                let grid = self.grid_scale(node.id, s, x, false);
                let qx = QTensor::quantize_with_scale(x, grid);
                let (cols_mat, m, kdim) = im2col_i8(qx.data(), c, h, w, p);
                debug_assert_eq!(kdim, qw.k);
                let op_f32 = Tensor::from_vec(
                    cols_mat.iter().map(|&v| v as f32 * grid).collect(),
                    &[m, kdim],
                )
                .expect("im2col shape");
                let (acc, out_scale) =
                    self.run_weighted(node, s, LinearKind::Conv, &op_f32, (c * h * w) as u64, &qw);
                // [m, n] accumulators → [n, ho, wo] with bias.
                let ho = p.out_extent(h);
                let wo = p.out_extent(w);
                let n = qw.n;
                let mut out = Tensor::zeros(&[n, ho, wo]);
                let ov = out.as_mut_slice();
                for co in 0..n {
                    let b = qw.bias.as_ref().map_or(0.0, |bv| bv[co]);
                    for pix in 0..m {
                        ov[co * m + pix] = acc[pix * n + co] as f32 * out_scale + b;
                    }
                }
                Some(out)
            }
            LayerOp::Linear { .. } => {
                let x = inputs[0];
                let qw = self.quantize_weight(node);
                let (acc, out_scale) =
                    self.run_weighted(node, s, LinearKind::Fc, x, x.len() as u64, &qw);
                let (m, n) = (x.dims()[0], qw.n);
                let mut out = Tensor::zeros(&[m, n]);
                let ov = out.as_mut_slice();
                for r in 0..m {
                    for cidx in 0..n {
                        let b = qw.bias.as_ref().map_or(0.0, |bv| bv[cidx]);
                        ov[r * n + cidx] = acc[r * n + cidx] as f32 * out_scale + b;
                    }
                }
                Some(out)
            }
            LayerOp::MatmulQK => {
                let (acc, scale, m, n) =
                    self.run_attention(node, s, LinearKind::MatmulQk, inputs[0], inputs[1]);
                let d = inputs[0].dims()[1] as f32;
                let sc = scale / d.sqrt();
                Some(
                    Tensor::from_vec(acc.iter().map(|&v| v as f32 * sc).collect(), &[m, n])
                        .expect("score shape"),
                )
            }
            LayerOp::MatmulPV => {
                let (acc, scale, m, n) =
                    self.run_attention(node, s, LinearKind::MatmulPv, inputs[0], inputs[1]);
                Some(
                    Tensor::from_vec(acc.iter().map(|&v| v as f32 * scale).collect(), &[m, n])
                        .expect("pv shape"),
                )
            }
            _ => None,
        }
    }
}

/// A hook that records per-layer absolute maxima for offline calibration
/// (the Q-Diffusion calibration pass of §VI-A), while leaving execution in
/// f32.
#[derive(Debug)]
pub struct CalibrationHook {
    cal: Calibrator,
}

impl CalibrationHook {
    /// Creates a calibration hook for a run of `steps` model calls.
    pub fn new(steps: usize) -> Self {
        CalibrationHook { cal: Calibrator::new(steps) }
    }

    /// Finishes calibration into a table with at most `clusters` time-step
    /// clusters per layer.
    pub fn finish(self, clusters: usize) -> CalibrationTable {
        self.cal.finish(clusters)
    }

    /// Finishes calibration TDQ-style: one scale per time step (see the
    /// quantization ablation bench for the trade-off against clustering).
    pub fn finish_per_step(self) -> CalibrationTable {
        self.cal.finish_per_step()
    }
}

impl LinearHook for CalibrationHook {
    fn observe(&mut self, node: &Node, step: StepInfo, inputs: &[&Tensor], _out: &Tensor) {
        if !node.op.is_linear_layer() {
            return;
        }
        self.cal.observe(node.id, step.step_index, stats::abs_max(inputs[0].as_slice()));
        if inputs.len() > 1 {
            // Secondary attention operand under its offset key.
            self.cal.observe(
                node.id + 1_000_000,
                step.step_index,
                stats::abs_max(inputs[1].as_slice()),
            );
        }
    }
}

/// Runs the full pipeline for one model: (optionally) calibrate, then trace
/// a quantized run. Returns the trace and the generated sample.
///
/// Models flagged [`diffusion::ModelKind::uses_dynamic_quant`] skip
/// calibration and pin grids from the first step (§VI-A: dynamic
/// quantization for the diffusion transformers).
///
/// # Errors
///
/// Propagates executor errors (impossible for zoo models).
pub fn trace_model(
    model: &DiffusionModel,
    sample_seed: u64,
    policy: ExecPolicy,
) -> tensor::Result<(WorkloadTrace, Tensor)> {
    let quantizer = build_quantizer(model, sample_seed)?;
    let mut hook = DittoHook::new(model, quantizer, policy);
    let out = model.run_reverse(sample_seed, &mut hook)?;
    Ok((hook.into_trace(), out))
}

/// Builds the quantization policy the paper applies to `model` (§VI-A):
/// an offline Q-Diffusion-style calibration pass with time-step clustering
/// for the UNet models, dynamic quantization for the diffusion
/// transformers. The calibration run samples with `calib_seed`.
///
/// # Errors
///
/// Propagates executor errors from the calibration run.
pub fn build_quantizer(model: &DiffusionModel, calib_seed: u64) -> tensor::Result<Quantizer> {
    if model.kind.uses_dynamic_quant() {
        Ok(Quantizer::dynamic())
    } else {
        let mut cal = CalibrationHook::new(model.model_calls());
        model.run_reverse(calib_seed, &mut cal)?;
        Ok(Quantizer::with_table(cal.finish(8)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffusion::{ModelKind, ModelScale};

    #[test]
    fn dense_and_delta_policies_are_bit_identical() {
        // The §IV-A equivalence, end to end through a real model.
        let model = DiffusionModel::build(ModelKind::Ddpm, ModelScale::Tiny, 7);
        let (_, out_dense) = trace_model(&model, 3, ExecPolicy::Dense).unwrap();
        let (_, out_delta) = trace_model(&model, 3, ExecPolicy::TemporalDelta).unwrap();
        assert_eq!(out_dense, out_delta);
    }

    #[test]
    fn attention_delta_policy_matches_dense() {
        let model = DiffusionModel::build(ModelKind::Dit, ModelScale::Tiny, 8);
        let (_, a) = trace_model(&model, 1, ExecPolicy::Dense).unwrap();
        let (_, b) = trace_model(&model, 1, ExecPolicy::TemporalDelta).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delta_path_exact_across_grid_boundaries() {
        // A per-step (TDQ-style) table changes the activation grid every
        // step, forcing the re-grid path; difference processing must stay
        // bit-identical to dense execution through every boundary.
        let model = DiffusionModel::build(ModelKind::Bed, ModelScale::Tiny, 14);
        let mut cal = CalibrationHook::new(model.model_calls());
        model.run_reverse(2, &mut cal).unwrap();
        let table = cal.finish_per_step();
        let q1 = Quantizer::with_table(table.clone());
        let q2 = Quantizer::with_table(table);
        let mut dense_hook = DittoHook::new(&model, q1, ExecPolicy::Dense);
        let dense = model.run_reverse(2, &mut dense_hook).unwrap();
        let mut delta_hook = DittoHook::new(&model, q2, ExecPolicy::TemporalDelta);
        let delta = model.run_reverse(2, &mut delta_hook).unwrap();
        assert_eq!(dense, delta);
    }

    #[test]
    fn regrid_levels_roundtrip() {
        let levels = vec![10i8, -20, 127, 0];
        let same = regrid_levels(&levels, 0.5, 0.5);
        assert_eq!(same, levels);
        // Doubling the grid halves the levels.
        let halved = regrid_levels(&levels, 0.5, 1.0);
        assert_eq!(halved, vec![5, -10, 64, 0]);
        // Shrinking the grid saturates.
        let sat = regrid_levels(&levels, 1.0, 0.001);
        assert_eq!(sat[2], 127);
    }

    #[test]
    fn trace_covers_all_linear_layers_and_steps() {
        let model = DiffusionModel::build(ModelKind::Bed, ModelScale::Tiny, 9);
        let (trace, _) = trace_model(&model, 2, ExecPolicy::Dense).unwrap();
        assert_eq!(trace.layer_count(), model.graph.linear_layers().len());
        assert_eq!(trace.step_count(), model.model_calls());
        // Step 0 has no temporal stats; later steps do.
        for st in &trace.steps[0] {
            assert!(st.temporal.is_none());
        }
        for st in &trace.steps[1] {
            assert!(st.temporal.is_some());
        }
    }

    #[test]
    fn temporal_deltas_are_mostly_narrow() {
        // The paper's central observation, on our BED instance: most
        // temporal differences are zero or ≤4-bit.
        let model = DiffusionModel::build(ModelKind::Bed, ModelScale::Tiny, 10);
        let (trace, _) = trace_model(&model, 4, ExecPolicy::Dense).unwrap();
        let t = trace.merged(crate::trace::StatView::Temporal);
        let a = trace.merged(crate::trace::StatView::Activation);
        assert!(
            t.le4_ratio() > a.le4_ratio(),
            "temporal {:.3} must beat activation {:.3}",
            t.le4_ratio(),
            a.le4_ratio()
        );
        assert!(t.zero_ratio() > a.zero_ratio());
    }

    #[test]
    fn cross_attention_context_deltas_are_zero() {
        // K'/V' come from the constant context: their producing FC layers
        // see identical inputs every step → all-zero temporal deltas
        // (the §IV-A cross-attention observation).
        let model = DiffusionModel::build(ModelKind::Img, ModelScale::Tiny, 11);
        let (trace, _) = trace_model(&model, 5, ExecPolicy::Dense).unwrap();
        let k_idx = trace
            .layers
            .iter()
            .position(|l| l.name.contains("attn2.k"))
            .expect("cross-attention K projection exists");
        for step in 1..trace.step_count() {
            let st = &trace.steps[step][k_idx];
            let h = st.temporal_merged().unwrap();
            assert_eq!(h.total(), h.zero, "step {step}: context deltas must all be zero");
        }
    }

    #[test]
    fn conv_layers_classified_in_im2col_domain() {
        let model = DiffusionModel::build(ModelKind::Ddpm, ModelScale::Tiny, 12);
        let (trace, _) = trace_model(&model, 6, ExecPolicy::Dense).unwrap();
        let conv = trace.layers.iter().find(|l| l.kind == LinearKind::Conv).unwrap();
        // im2col elements = K² × raw elements for stride-1 same conv.
        assert!(conv.elems >= conv.in_bytes, "{} vs {}", conv.elems, conv.in_bytes);
        assert_eq!(conv.macs, conv.elems * conv.reuse);
    }

    #[test]
    fn spatial_hist_counts_base_row_plus_deltas() {
        let h = spatial_hist(&[10, 20, 10, 21, 10, 120], 3, 2);
        // Base row: 10, 20 (both Full8). Deltas: 0, 1, 0, 99.
        assert_eq!(h.total(), 6);
        assert_eq!(h.zero, 2);
        assert_eq!(h.low4, 1);
        assert_eq!(h.full8, 3);
    }

    #[test]
    fn quantized_outputs_track_fp32() {
        // Quantized execution must stay close to FP32 (Table II's premise).
        let model = DiffusionModel::build(ModelKind::Ddpm, ModelScale::Tiny, 13);
        let fp32 = model.run_reverse(5, &mut diffusion::NullHook).unwrap();
        let (_, q) = trace_model(&model, 5, ExecPolicy::Dense).unwrap();
        let sim = stats::cosine_similarity(fp32.as_slice(), q.as_slice());
        assert!(sim > 0.95, "cosine similarity {sim}");
    }
}
