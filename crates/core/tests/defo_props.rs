//! Property tests of Defo's static dependency analysis on randomized
//! layer graphs: domain-propagation invariants and boundary consistency.

use diffusion::{InputKind, LayerGraph, LayerOp, OpClass};
use ditto_core::defo::{analyze, Domain};
use proptest::prelude::*;
use tensor::Tensor;

/// Op alphabet for random graph construction (single-operand ops plus Add).
#[derive(Debug, Clone, Copy)]
enum OpPick {
    Linear,
    Silu,
    Gelu,
    Scale,
    Add,
}

fn arb_op() -> impl Strategy<Value = OpPick> {
    prop_oneof![
        3 => Just(OpPick::Linear),
        2 => Just(OpPick::Silu),
        1 => Just(OpPick::Gelu),
        2 => Just(OpPick::Scale),
        2 => Just(OpPick::Add),
    ]
}

/// Builds a random well-formed graph: each node consumes uniformly random
/// earlier nodes.
fn build_graph(ops: &[(OpPick, u64)]) -> LayerGraph {
    let mut g = LayerGraph::new();
    let x = g.add("input", LayerOp::Input(InputKind::Latent), &[]);
    let mut last = x;
    for (i, &(op, seed)) in ops.iter().enumerate() {
        let mut rng = tensor::Rng::seed_from(seed);
        let pick = |rng: &mut tensor::Rng, hi: usize| rng.next_below(hi);
        let a = pick(&mut rng, last + 1);
        last = match op {
            OpPick::Linear => g.add(
                format!("fc{i}"),
                LayerOp::Linear { weight: Tensor::eye(2), bias: None },
                &[a],
            ),
            OpPick::Silu => g.add(format!("silu{i}"), LayerOp::SiLU, &[a]),
            OpPick::Gelu => g.add(format!("gelu{i}"), LayerOp::GeLU, &[a]),
            OpPick::Scale => g.add(format!("scale{i}"), LayerOp::Scale(0.5), &[a]),
            OpPick::Add => {
                let b = pick(&mut rng, last + 1);
                g.add(format!("add{i}"), LayerOp::Add, &[a, b])
            }
        };
    }
    g.set_output(last);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Boundaries cover exactly the linear layers, in order.
    #[test]
    fn boundaries_cover_linear_layers(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..24)) {
        let g = build_graph(&ops);
        let a = analyze(&g);
        let linear = g.linear_layers();
        prop_assert_eq!(a.boundaries.len(), linear.len());
        for (b, id) in a.boundaries.iter().zip(&linear) {
            prop_assert_eq!(b.node, *id);
        }
        prop_assert_eq!(a.domains.len(), g.len());
    }

    /// Domain propagation invariants:
    /// * linear nodes are Diff;
    /// * non-linear and input nodes are Original;
    /// * transparent nodes are Diff iff all operands are Diff.
    #[test]
    fn domain_rules_hold(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..24)) {
        let g = build_graph(&ops);
        let a = analyze(&g);
        for node in g.nodes() {
            let d = a.domains[node.id];
            match node.op.class() {
                OpClass::Linear => prop_assert_eq!(d, Domain::Diff),
                OpClass::NonLinear | OpClass::Input => prop_assert_eq!(d, Domain::Original),
                OpClass::Transparent => {
                    let all_diff = node.inputs.iter().all(|&i| a.domains[i] == Domain::Diff);
                    prop_assert_eq!(d == Domain::Diff, all_diff, "node {}", node.name);
                }
            }
        }
    }

    /// A layer whose operand producer chain contains no non-linear node or
    /// graph input must not need a difference calculation, and vice versa.
    #[test]
    fn diff_calc_matches_operand_domain(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..24)) {
        let g = build_graph(&ops);
        let a = analyze(&g);
        for b in &a.boundaries {
            let node = g.node(b.node);
            // Single-operand linear layers: flag iff the operand's domain
            // is Original.
            let operand = node.inputs[0];
            prop_assert_eq!(
                b.needs_diff_calc,
                a.domains[operand] == Domain::Original,
                "layer {}",
                node.name
            );
        }
    }

    /// Boundary kind lists only name non-linear ops, deduplicated.
    #[test]
    fn boundary_kinds_are_nonlinear_names(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..24)) {
        let g = build_graph(&ops);
        let a = analyze(&g);
        let nonlinear = ["silu", "gelu", "softmax", "group_norm", "layer_norm", "sigmoid",
                         "avg_pool", "modulate", "gate", "mul", "time_embed"];
        for b in &a.boundaries {
            for k in b.in_boundary.iter().chain(&b.out_boundary) {
                prop_assert!(nonlinear.contains(&k.as_str()), "unexpected kind {k}");
            }
            let mut sorted = b.out_boundary.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), b.out_boundary.len(), "deduplicated");
        }
    }

    /// Analysis is deterministic.
    #[test]
    fn analysis_is_deterministic(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..16)) {
        let g = build_graph(&ops);
        let a1 = analyze(&g);
        let a2 = analyze(&g);
        prop_assert_eq!(a1.domains, a2.domains);
        for (x, y) in a1.boundaries.iter().zip(&a2.boundaries) {
            prop_assert_eq!(x.needs_diff_calc, y.needs_diff_calc);
            prop_assert_eq!(x.needs_summation, y.needs_summation);
        }
    }

    /// The graph output always forces a summation on its producing region:
    /// if the output node's domain is Diff, some boundary must carry
    /// `needs_summation`.
    #[test]
    fn output_region_is_summed(ops in proptest::collection::vec((arb_op(), any::<u64>()), 1..24)) {
        let g = build_graph(&ops);
        let a = analyze(&g);
        if a.domains[g.output()] == Domain::Diff {
            prop_assert!(
                a.boundaries.iter().any(|b| b.needs_summation),
                "a diff-domain output must be materialized"
            );
        }
    }
}
