//! End-to-end: an enabled [`ditto_core::telemetry::Telemetry`] handle
//! flips the `diffusion::plan` profiling gate on, drains the exec
//! registry, and exports `plan_profile` stream events plus `plan_step`
//! catapult spans whose per-opcode self-time sums reconcile with the
//! recorded step totals.
//!
//! This lives in its own integration-test binary (its own process) because
//! the plan exec registry and the profiling gate are process-global: unit
//! tests running in parallel could drain each other's data.

use std::sync::Arc;

use diffusion::{Bindings, InputKind, LayerGraph, LayerOp, PlanArena, TracePlan};
use ditto_core::jsonio::{self, Value};
use ditto_core::telemetry::Telemetry;
use tensor::Tensor;

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ditto-teleplan-{tag}-{}", std::process::id()))
}

fn silu_chain(depth: usize) -> LayerGraph {
    let mut g = LayerGraph::new();
    let mut cur = g.add("x", LayerOp::Input(InputKind::Latent), &[]);
    for i in 0..depth {
        cur = g.add(format!("silu{i}"), LayerOp::SiLU, &[cur]);
    }
    g.set_output(cur);
    g
}

#[test]
fn plan_profiles_flow_through_telemetry_to_both_exporters() {
    let stream = temp("stream");
    let trace = temp("trace");

    let graph = silu_chain(5);
    let latent = Tensor::from_vec(vec![0.25; 64], &[8, 8]).unwrap();
    let bindings = Bindings { latent: &latent, context: None, t: 3.0 };
    let plan = TracePlan::compile(&graph, &[8, 8], None).unwrap();
    let digest_hex = format!("{:016x}", plan.digest());
    let mut arena = PlanArena::new();

    let steps = 4u64;
    {
        let tel = Arc::new(Telemetry::to_files(Some(&stream), Some(&trace)));
        assert!(tel.enabled() && tel.has_stream());
        // Enabling telemetry must have armed the plan profiler.
        assert!(diffusion::plan::profiling_enabled());
        for _ in 0..steps {
            plan.execute(&graph, &bindings, &mut arena).unwrap();
        }
        tel.flush();
    } // drop drains the stream and runs the final idle tick

    // --- stream side: the last plan_profile line for our digest ---
    let text = std::fs::read_to_string(&stream).unwrap();
    let events: Vec<Value> =
        text.lines().map(|l| jsonio::parse(l.as_bytes()).expect("valid JSONL")).collect();
    let profile = events
        .iter()
        .rev()
        .find(|e| {
            matches!(e.get("event"), Ok(Value::Str(s)) if s == "plan_profile")
                && matches!(e.get("digest"), Ok(Value::Str(d)) if *d == digest_hex)
        })
        .expect("plan_profile event for our digest");
    let int = |v: &Value, k: &str| match v.get(k).unwrap() {
        Value::Int(i) => *i,
        other => panic!("{k} must be an integer, got {other:?}"),
    };
    assert_eq!(int(profile, "steps"), i128::from(steps));
    assert_eq!(int(profile, "arena_f32"), plan.arena_len() as i128);
    let total_ns = int(profile, "total_ns");
    let by_kind = profile.get("by_kind").unwrap();
    let silu = by_kind.get("silu").expect("silu attributed");
    assert_eq!(int(silu, "calls"), i128::from(steps) * 5);
    assert_eq!(int(silu, "bytes"), i128::from(steps) * 5 * 64 * 4);
    // Per-opcode self time reconciles with the step totals: the op sum is
    // measured inside the steps, so it can never exceed them.
    let kind_ns: i128 = match by_kind {
        Value::Obj(fields) => fields.iter().map(|(_, v)| int(v, "ns")).sum(),
        _ => panic!("by_kind must be an object"),
    };
    assert!(kind_ns > 0 && kind_ns <= total_ns, "kind ns {kind_ns} vs total {total_ns}");

    // --- trace side: one plan_step span per execute, durations summing to
    // the profile total (same measurements, µs truncation slack) ---
    let doc = jsonio::parse(&std::fs::read(&trace).unwrap()).expect("catapult parses");
    let Value::Arr(tevents) = doc.get("traceEvents").unwrap() else { panic!("traceEvents") };
    let step_name = format!("plan_step:{digest_hex}");
    let spans: Vec<&Value> = tevents
        .iter()
        .filter(|e| matches!(e.get("name"), Ok(Value::Str(n)) if *n == step_name))
        .collect();
    assert_eq!(spans.len(), steps as usize, "one catapult span per executed step");
    let span_us: i128 = spans.iter().map(|e| int(e, "dur")).sum();
    let total_us = total_ns / 1_000;
    assert!(
        span_us <= total_us && span_us + i128::from(steps) >= total_us - i128::from(steps),
        "span µs {span_us} must reconcile with profile total µs {total_us}"
    );
    for e in &spans {
        assert!(matches!(e.get("ph"), Ok(Value::Str(p)) if p == "X"));
        assert!(int(e, "ts") >= 0 && int(e, "dur") >= 0);
    }

    // --- kernel dispatch counts surfaced as a stream event ---
    // (an 8×8 silu chain dispatches no counted kernels, so just assert the
    // event schema when present; the counter itself is pinned by the
    // tensor unit tests)
    for e in events
        .iter()
        .filter(|e| matches!(e.get("event"), Ok(Value::Str(s)) if s == "kernel_dispatch"))
    {
        assert!(matches!(e.get("rows"), Ok(Value::Arr(_))));
    }

    std::fs::remove_file(&stream).unwrap();
    std::fs::remove_file(&trace).unwrap();
    // The gate stays armed process-wide; disarm for hygiene.
    diffusion::plan::set_profiling(false);
    tensor::backend::set_dispatch_counting(false);
}
