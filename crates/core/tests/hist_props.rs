//! Property tests holding [`ditto_core::hist::LogHistogram`] percentiles
//! to the exact sorted-vector oracle: for any sample set and any
//! percentile, the histogram must report the upper edge of exactly the
//! bucket that contains the oracle's order statistic — never a different
//! bucket, never below the exact value.

use ditto_core::hist::{bucket_index, LogHistogram};
use proptest::collection;
use proptest::prelude::*;

/// The oracle: rank-⌈p/100·n⌉ smallest element (clamped to rank 1), the
/// same definition `LogHistogram::percentile` documents.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed magnitudes (sub-bucket-exact small values through multi-octave
    /// large ones): every percentile lands in the oracle's bucket.
    #[test]
    fn percentiles_match_sorted_oracle(
        samples in collection::vec(0u64..2_000_000, 1..300),
        percentiles in collection::vec(0u64..=100, 1..8),
    ) {
        let mut h = LogHistogram::new();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for &p in &percentiles {
            let p = p as f64;
            let exact = exact_percentile(&sorted, p);
            let got = h.percentile(p);
            prop_assert!(got >= exact, "p{} reported {} below exact {}", p, got, exact);
            prop_assert_eq!(
                bucket_index(got), bucket_index(exact),
                "p{}: histogram bucket diverged from the oracle's", p
            );
        }
    }

    /// Merging partitioned streams is indistinguishable from one stream.
    #[test]
    fn merge_is_equivalent_to_single_stream(
        samples in collection::vec(0u64..1_000_000, 2..200),
        split in 1usize..100,
    ) {
        let cut = split % (samples.len() - 1) + 1;
        let (mut left, mut right, mut whole) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for (i, &s) in samples.iter().enumerate() {
            if i < cut { left.record(s) } else { right.record(s) }
            whole.record(s);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        for p in [10.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(left.percentile(p), whole.percentile(p));
        }
    }
}
